#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "cost/budget.h"
#include "cost/ledger.h"
#include "cost/expectation.h"
#include "cost/known_color.h"
#include "cost/sampling.h"
#include "graph/candidates.h"
#include "graph/pruning.h"
#include "tests/test_util.h"

namespace cdb {
namespace {

// ------------------------------------------------------- Known colors ---

TEST(KnownColorTest, Figure1ChainNeedsOnlyThreeTasks) {
  // The paper's headline example: tuple-level selection asks 3 edges where
  // any tree order asks at least 12 of the 12 edges' worth (9 + 3).
  QueryGraph graph = testing_util::MakeFigure1Chain();
  std::vector<EdgeColor> colors(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    colors[static_cast<size_t>(e)] =
        graph.edge(e).pred == 1 ? EdgeColor::kRed : EdgeColor::kBlue;
  }
  std::vector<EdgeId> tasks = SelectTasksKnownColors(graph, colors);
  EXPECT_EQ(tasks.size(), 3u);
}

TEST(KnownColorTest, StarSatisfiedCenterAsksAll) {
  // Star with center 0 and leaves 1, 2. Center tuple 0 has a blue edge to
  // both leaves plus one red each: all 4 edges asked.
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}, {true, false, 0, 2}};
  std::vector<QueryGraph::SyntheticEdge> edges = {
      {0, 0, 0, 0.9}, {0, 0, 1, 0.4}, {1, 0, 0, 0.9}, {1, 0, 1, 0.4}};
  QueryGraph graph = QueryGraph::MakeSynthetic(3, preds, edges);
  std::vector<EdgeColor> colors = {EdgeColor::kBlue, EdgeColor::kRed,
                                   EdgeColor::kBlue, EdgeColor::kRed};
  std::vector<EdgeId> tasks = StarSelection(graph, 0, colors);
  EXPECT_EQ(tasks.size(), 4u);
}

TEST(KnownColorTest, StarUnsatisfiedCenterAsksCheapestRedGroup) {
  // Center tuple with 3 red edges to leaf 1 and 1 red edge to leaf 2:
  // asking the single leaf-2 edge refutes the tuple.
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}, {true, false, 0, 2}};
  std::vector<QueryGraph::SyntheticEdge> edges = {
      {0, 0, 0, 0.4}, {0, 0, 1, 0.4}, {0, 0, 2, 0.4}, {1, 0, 0, 0.4}};
  QueryGraph graph = QueryGraph::MakeSynthetic(3, preds, edges);
  std::vector<EdgeColor> colors(4, EdgeColor::kRed);
  std::vector<EdgeId> tasks = StarSelection(graph, 0, colors);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(graph.edge(tasks[0]).pred, 1);
}

TEST(KnownColorTest, StarMixedBluePathStillRefutedCheaply) {
  // Blue edges to leaf 1 but only red to leaf 2: ask the red leaf-2 group.
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}, {true, false, 0, 2}};
  std::vector<QueryGraph::SyntheticEdge> edges = {
      {0, 0, 0, 0.9}, {0, 0, 1, 0.9}, {1, 0, 0, 0.4}, {1, 0, 1, 0.4}};
  QueryGraph graph = QueryGraph::MakeSynthetic(3, preds, edges);
  std::vector<EdgeColor> colors = {EdgeColor::kBlue, EdgeColor::kBlue,
                                   EdgeColor::kRed, EdgeColor::kRed};
  std::vector<EdgeId> tasks = StarSelection(graph, 0, colors);
  EXPECT_EQ(tasks.size(), 2u);
  for (EdgeId e : tasks) EXPECT_EQ(graph.edge(e).pred, 1);
}

TEST(KnownColorTest, DispatchesOnStructure) {
  // Star graphs route to the star rule; chains route to the min cut. Both
  // must return a non-empty selection when answers exist.
  QueryGraph chain = testing_util::MakeFigure4Neighborhood();
  std::vector<EdgeColor> blue(static_cast<size_t>(chain.num_edges()),
                              EdgeColor::kBlue);
  EXPECT_FALSE(SelectTasksKnownColors(chain, blue).empty());
}

// --------------------------------------------------------- Expectation ---

TEST(ExpectationTest, PaperWorkedExample) {
  // E(p1, r1) = (1 - .42)/1 * 2 + (1-.42)(1-.41)(1-.83)/3 * 6 ~= 1.27.
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  Pruner pruner(&graph);
  VertexId r1 = graph.FindVertex(1, 1);
  VertexId p1 = graph.FindVertex(2, 1);
  EdgeId e = FindEdgeBetween(graph, r1, p1, 1);
  ASSERT_NE(e, kNoEdge);
  double expectation = PruningExpectation(graph, pruner, e);
  double expected =
      (1 - 0.42) * 2.0 + (1 - 0.42) * (1 - 0.41) * (1 - 0.83) * 6.0 / 3.0;
  EXPECT_NEAR(expectation, expected, 1e-9);
  EXPECT_NEAR(expectation, 1.27, 0.02);
}

TEST(ExpectationTest, OrderIsDescendingAndComplete) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  Pruner pruner(&graph);
  std::vector<ScoredEdge> order = ExpectationOrder(graph, pruner);
  EXPECT_EQ(order.size(), pruner.RemainingTasks().size());
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(order[i - 1].expectation, order[i].expectation);
  }
}

TEST(ExpectationTest, BlueEdgeInGroupZeroesCutTerm) {
  // Once one of p1's R-P edges is BLUE, the beta term vanishes (the group
  // can no longer be fully cut).
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  VertexId r3 = graph.FindVertex(1, 3);
  VertexId p1 = graph.FindVertex(2, 1);
  graph.SetColor(FindEdgeBetween(graph, r3, p1, 1), EdgeColor::kBlue);
  Pruner pruner(&graph);
  VertexId r1 = graph.FindVertex(1, 1);
  EdgeId e = FindEdgeBetween(graph, r1, p1, 1);
  double expectation = PruningExpectation(graph, pruner, e);
  EXPECT_NEAR(expectation, (1 - 0.42) * 2.0, 1e-9);
}

TEST(ExpectationTest, InvalidEdgesAreNotScored) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  // Kill the only P-C edge: everything is invalid, nothing to score.
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (graph.edge(e).pred == 2) graph.SetColor(e, EdgeColor::kRed);
  }
  Pruner pruner(&graph);
  EXPECT_TRUE(ExpectationOrder(graph, pruner).empty());
}

// ------------------------------------------------------------ Sampling ---

TEST(SamplingTest, OrderContainsAllUnknownEdges) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  SamplingOptions options;
  options.num_samples = 20;
  std::vector<EdgeId> order = SampleMinCutOrder(graph, options);
  EXPECT_EQ(order.size(), static_cast<size_t>(graph.num_edges()));
  std::set<EdgeId> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), order.size());
}

TEST(SamplingTest, SkipsColoredEdges) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  graph.SetColor(0, EdgeColor::kBlue);
  graph.SetColor(1, EdgeColor::kRed);
  SamplingOptions options;
  options.num_samples = 10;
  std::vector<EdgeId> order = SampleMinCutOrder(graph, options);
  EXPECT_EQ(order.size(), static_cast<size_t>(graph.num_edges() - 2));
  for (EdgeId e : order) {
    EXPECT_NE(e, 0);
    EXPECT_NE(e, 1);
  }
}

TEST(SamplingTest, DeterministicGivenSeed) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  SamplingOptions options;
  options.num_samples = 15;
  options.seed = 5;
  EXPECT_EQ(SampleMinCutOrder(graph, options), SampleMinCutOrder(graph, options));
}

TEST(SamplingTest, LikelyRedHighImpactEdgeComesFirst) {
  // In the Figure-1 chain, the pred-1 edges (weight .4, refuting whole
  // chains) should dominate the per-sample cuts and hence lead the order.
  QueryGraph graph = testing_util::MakeFigure1Chain();
  SamplingOptions options;
  options.num_samples = 200;
  std::vector<EdgeId> order = SampleMinCutOrder(graph, options);
  ASSERT_GE(order.size(), 3u);
  int pred1_in_top3 = 0;
  for (size_t i = 0; i < 3; ++i) {
    if (graph.edge(order[i]).pred == 1) ++pred1_in_top3;
  }
  EXPECT_GE(pred1_in_top3, 2);
}

// -------------------------------------------------------------- Budget ---

TEST(BudgetTest, PicksHighestProbabilityCandidateEdges) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  std::vector<EdgeId> batch = BudgetNextBatch(graph);
  // The best candidate is u?-r3-p1-c1 (0.6 * 0.83 * 0.9); batch is its three
  // unknown edges in descending weight.
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_DOUBLE_EQ(graph.edge(batch[0]).weight, 0.9);
  EXPECT_DOUBLE_EQ(graph.edge(batch[1]).weight, 0.83);
  EXPECT_DOUBLE_EQ(graph.edge(batch[2]).weight, 0.6);
}

TEST(BudgetTest, SkipsAskedEdges) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  VertexId p1 = graph.FindVertex(2, 1);
  VertexId c1 = graph.FindVertex(3, 1);
  graph.SetColor(FindEdgeBetween(graph, p1, c1, 2), EdgeColor::kBlue);
  std::vector<EdgeId> batch = BudgetNextBatch(graph);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(graph.edge(batch[0]).weight, 0.83);
}

TEST(BudgetTest, EmptyWhenNothingSurvives) {
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}};
  std::vector<QueryGraph::SyntheticEdge> edges = {
      {0, 0, 0, 0.9, true, EdgeColor::kRed}};
  QueryGraph graph = QueryGraph::MakeSynthetic(2, preds, edges);
  EXPECT_TRUE(BudgetNextBatch(graph).empty());
}

TEST(BudgetLedgerTest, UnlimitedLedgerHasNoRemaining) {
  // Regression for the INT64_MAX sentinel: the unlimited case is nullopt, so
  // "remaining() + slack" arithmetic cannot silently overflow.
  BudgetLedger ledger;
  EXPECT_FALSE(ledger.limited());
  EXPECT_FALSE(ledger.remaining().has_value());
  EXPECT_FALSE(ledger.Exhausted());
  EXPECT_EQ(ledger.TryDebit(1000), 1000);
  EXPECT_FALSE(ledger.remaining().has_value());
  EXPECT_FALSE(ledger.Exhausted());
  EXPECT_EQ(ledger.spent(), 1000);
}

TEST(BudgetLedgerTest, LimitedLedgerClampsAndExhausts) {
  BudgetLedger ledger(10);
  EXPECT_TRUE(ledger.limited());
  EXPECT_EQ(ledger.remaining().value(), 10);
  EXPECT_EQ(ledger.TryDebit(4), 4);
  EXPECT_EQ(ledger.remaining().value(), 6);
  EXPECT_FALSE(ledger.Exhausted());
  EXPECT_EQ(ledger.TryDebit(100), 6);  // Partial grant, clamped at the limit.
  EXPECT_EQ(ledger.remaining().value(), 0);
  EXPECT_TRUE(ledger.Exhausted());
  EXPECT_EQ(ledger.TryDebit(1), 0);
  EXPECT_EQ(ledger.remaining().value(), 0);  // Never negative.
  EXPECT_EQ(ledger.spent(), 10);
}

TEST(BudgetLedgerTest, SpendSaturatesInsteadOfOverflowing) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  BudgetLedger ledger;  // Unlimited grants everything asked.
  EXPECT_EQ(ledger.TryDebit(kMax), kMax);
  EXPECT_EQ(ledger.TryDebit(kMax), kMax);  // Would overflow spent_ if summed.
  EXPECT_EQ(ledger.spent(), kMax);         // Saturated, not wrapped.
}

TEST(BudgetLedgerTest, TrySpendIsAllOrNothing) {
  BudgetLedger ledger(10);
  EXPECT_TRUE(ledger.TrySpend(4));
  EXPECT_EQ(ledger.remaining().value(), 6);
  // Asking for more than remains spends nothing — no partial grant.
  EXPECT_FALSE(ledger.TrySpend(7));
  EXPECT_EQ(ledger.remaining().value(), 6);
  EXPECT_EQ(ledger.spent(), 4);
  // Exactly the remaining amount is grantable.
  EXPECT_TRUE(ledger.TrySpend(6));
  EXPECT_TRUE(ledger.Exhausted());
  EXPECT_FALSE(ledger.TrySpend(1));
  // Zero-cost spends stay legal even on an exhausted ledger.
  EXPECT_TRUE(ledger.TrySpend(0));
  EXPECT_EQ(ledger.spent(), 10);
}

TEST(BudgetLedgerTest, TrySpendUnlimitedAlwaysGrants) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  BudgetLedger ledger;
  EXPECT_TRUE(ledger.TrySpend(kMax));
  EXPECT_TRUE(ledger.TrySpend(kMax));  // Saturates spent_, still granted.
  EXPECT_EQ(ledger.spent(), kMax);
  EXPECT_FALSE(ledger.Exhausted());
}

TEST(BudgetLedgerTest, ConcurrentTrySpendNeverOverspends) {
  // The atomic replacement for Exhausted()-then-debit: with every thread
  // spending through TrySpend, successes times the unit cost must equal the
  // limit exactly — the check-then-act gap this API closes.
  BudgetLedger ledger(600);
  constexpr int kThreads = 8;
  std::vector<int64_t> successes(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, &successes, t] {
      for (int i = 0; i < 200; ++i) {
        if (ledger.TrySpend(3)) ++successes[static_cast<size_t>(t)];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  int64_t total = 0;
  for (int64_t s : successes) total += s;
  EXPECT_EQ(total * 3, 600);
  EXPECT_TRUE(ledger.Exhausted());
  EXPECT_EQ(ledger.spent(), 600);
}

TEST(BudgetLedgerTest, ConcurrentDebitsNeverOverspend) {
  // The scheduler debits a shared ledger across sessions; total grants must
  // equal the limit exactly regardless of interleaving.
  BudgetLedger ledger(1000);
  constexpr int kThreads = 8;
  std::vector<int64_t> granted(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, &granted, t] {
      for (int i = 0; i < 500; ++i) granted[static_cast<size_t>(t)] += ledger.TryDebit(1);
    });
  }
  for (std::thread& t : threads) t.join();
  int64_t total = 0;
  for (int64_t g : granted) total += g;
  EXPECT_EQ(total, 1000);
  EXPECT_TRUE(ledger.Exhausted());
  EXPECT_EQ(ledger.spent(), 1000);
}

}  // namespace
}  // namespace cdb
