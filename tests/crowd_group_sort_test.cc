#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exec/crowd_group_sort.h"

namespace cdb {
namespace {

PlatformOptions Perfect(uint64_t seed = 3) {
  PlatformOptions platform;
  platform.worker_quality_mean = 1.0;
  platform.worker_quality_stddev = 0.0;
  platform.redundancy = 1;
  platform.seed = seed;
  return platform;
}

// Values in the same "entity" (same prefix) truly group together.
std::vector<std::string> GroupValues() {
  return {"University of Chicago", "Univ. of Chicago", "U. of Chicago",
          "Stanford University",   "Stanford Univ.",
          "MIT"};
}

GroupTruthFn PrefixGroupTruth() {
  // Truth by index ranges of GroupValues(): {0,1,2}, {3,4}, {5}.
  return [](size_t a, size_t b) {
    auto group = [](size_t i) { return i <= 2 ? 0 : i <= 4 ? 1 : 2; };
    return group(a) == group(b);
  };
}

TEST(CrowdGroupByTest, RecoversTrueGroups) {
  CrowdGroupOptions options;
  options.platform = Perfect();
  CrowdGroupResult result =
      CrowdGroupBy(GroupValues(), options, PrefixGroupTruth());
  EXPECT_EQ(result.num_groups, 3);
  EXPECT_EQ(result.group_of[0], result.group_of[1]);
  EXPECT_EQ(result.group_of[0], result.group_of[2]);
  EXPECT_EQ(result.group_of[3], result.group_of[4]);
  EXPECT_NE(result.group_of[0], result.group_of[3]);
  EXPECT_NE(result.group_of[0], result.group_of[5]);
  EXPECT_GT(result.tasks_asked, 0);
}

TEST(CrowdGroupByTest, TransitivitySavesTasks) {
  // Three exact duplicates: two matches imply the third by transitivity, so
  // at most C(3,2) - 1 = 2 tasks are asked for that cluster.
  std::vector<std::string> values = {"alpha beta", "alpha beta", "alpha beta"};
  CrowdGroupOptions options;
  options.platform = Perfect();
  CrowdGroupResult result =
      CrowdGroupBy(values, options, [](size_t, size_t) { return true; });
  EXPECT_EQ(result.num_groups, 1);
  EXPECT_LE(result.tasks_asked, 2);
}

TEST(CrowdGroupByTest, EpsilonPrunesWithoutAsking) {
  // Dissimilar strings never reach the crowd.
  std::vector<std::string> values = {"aaaaaa", "zzzzzz"};
  CrowdGroupOptions options;
  options.platform = Perfect();
  CrowdGroupResult result =
      CrowdGroupBy(values, options, [](size_t, size_t) { return true; });
  EXPECT_EQ(result.tasks_asked, 0);
  EXPECT_EQ(result.num_groups, 2);
}

TEST(CrowdGroupByTest, EmptyInput) {
  CrowdGroupOptions options;
  options.platform = Perfect();
  CrowdGroupResult result =
      CrowdGroupBy({}, options, [](size_t, size_t) { return false; });
  EXPECT_EQ(result.num_groups, 0);
  EXPECT_TRUE(result.group_of.empty());
}

TEST(CrowdOrderByTest, SortsPerfectly) {
  // True order: by the hidden key i*7 % 11.
  std::vector<int> key = {0, 7, 3, 10, 6, 2, 9, 5, 1, 8};
  CrowdSortOptions options;
  options.platform = Perfect();
  CrowdSortResult result = CrowdOrderBy(
      key.size(), options,
      [&](size_t a, size_t b) { return key[a] < key[b]; });
  ASSERT_EQ(result.order.size(), key.size());
  for (size_t i = 1; i < result.order.size(); ++i) {
    EXPECT_LT(key[result.order[i - 1]], key[result.order[i]]);
  }
  EXPECT_GT(result.tasks_asked, 0);
}

TEST(CrowdOrderByTest, TaskCountIsMergeSortLike) {
  const size_t n = 16;
  CrowdSortOptions options;
  options.platform = Perfect();
  CrowdSortResult result = CrowdOrderBy(
      n, options, [](size_t a, size_t b) { return a < b; });
  // Merge sort asks at most n*log2(n) comparisons and at least n-1.
  EXPECT_GE(result.tasks_asked, static_cast<int64_t>(n - 1));
  EXPECT_LE(result.tasks_asked, static_cast<int64_t>(n) * 4);
}

TEST(CrowdOrderByTest, BatchesComparisonsAcrossMerges) {
  // With many parallel merges, rounds grow ~linearly in n (merge cursors are
  // sequential) but stay well below the total comparison count.
  const size_t n = 32;
  CrowdSortOptions options;
  options.platform = Perfect();
  CrowdSortResult result = CrowdOrderBy(
      n, options, [](size_t a, size_t b) { return a < b; });
  EXPECT_LT(result.rounds, result.tasks_asked);
}

TEST(CrowdOrderByTest, SmallInputs) {
  CrowdSortOptions options;
  options.platform = Perfect();
  EXPECT_TRUE(CrowdOrderBy(0, options, [](size_t, size_t) { return true; })
                  .order.empty());
  CrowdSortResult one =
      CrowdOrderBy(1, options, [](size_t, size_t) { return true; });
  ASSERT_EQ(one.order.size(), 1u);
  EXPECT_EQ(one.tasks_asked, 0);
}

TEST(CrowdOrderByTest, NoisyCrowdStillPermutation) {
  std::vector<int> key(20);
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<int>(i * 13 % 20);
  CrowdSortOptions options;
  options.platform.worker_quality_mean = 0.7;
  options.platform.redundancy = 3;
  CrowdSortResult result = CrowdOrderBy(
      key.size(), options,
      [&](size_t a, size_t b) { return key[a] < key[b]; });
  std::set<size_t> seen(result.order.begin(), result.order.end());
  EXPECT_EQ(seen.size(), key.size());  // A permutation even with errors.
}

}  // namespace
}  // namespace cdb
