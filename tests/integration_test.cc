// End-to-end integration: generated datasets -> CQL -> graph -> simulated
// crowd -> answers, across all nine methods, checking the paper's headline
// relationships (not absolute numbers) at reduced scale.
#include <gtest/gtest.h>

#include <map>

#include "bench_util/queries.h"
#include "bench_util/runner.h"
#include "datagen/paper_dataset.h"

namespace cdb {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PaperDatasetOptions options;
    options.scale = 0.08;  // ~54 papers, 99 citations, 72 researchers.
    options.seed = 2024;
    dataset_ = new GeneratedDataset(GeneratePaperDataset(options));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static RunConfig HighQualityConfig() {
    RunConfig config;
    config.worker_quality = 0.95;
    config.repetitions = 2;
    config.redundancy = 5;
    config.sampling_samples = 20;
    config.seed = 5;
    return config;
  }

  static GeneratedDataset* dataset_;
};

GeneratedDataset* IntegrationTest::dataset_ = nullptr;

TEST_F(IntegrationTest, AllMethodsCompleteWithGoodQuality) {
  const std::string cql = PaperQueries()[0].cql;  // 2J.
  RunConfig config = HighQualityConfig();
  for (Method method : AllMethods()) {
    RunOutcome outcome = RunMethod(method, *dataset_, cql, config).value();
    EXPECT_GT(outcome.tasks, 0.0) << MethodName(method);
    EXPECT_GT(outcome.rounds, 0.0) << MethodName(method);
    EXPECT_GT(outcome.f1, 0.5) << MethodName(method);
  }
}

TEST_F(IntegrationTest, GraphModelCheaperThanTreeModel) {
  const std::string cql = PaperQueries()[2].cql;  // 3J.
  RunConfig config = HighQualityConfig();
  config.repetitions = 1;
  double cdb = RunMethod(Method::kCdb, *dataset_, cql, config).value().tasks;
  double crowddb = RunMethod(Method::kCrowdDb, *dataset_, cql, config).value().tasks;
  double opttree = RunMethod(Method::kOptTree, *dataset_, cql, config).value().tasks;
  EXPECT_LT(cdb, crowddb);
  EXPECT_LE(cdb, opttree);
  EXPECT_LE(opttree, crowddb * 1.001);  // Oracle order cannot be worse.
}

TEST_F(IntegrationTest, ErMethodsNeedMoreRounds) {
  const std::string cql = PaperQueries()[0].cql;
  RunConfig config = HighQualityConfig();
  config.repetitions = 1;
  double trans_rounds = RunMethod(Method::kTrans, *dataset_, cql, config).value().rounds;
  double tree_rounds = RunMethod(Method::kDeco, *dataset_, cql, config).value().rounds;
  EXPECT_GT(trans_rounds, tree_rounds);
}

TEST_F(IntegrationTest, CdbPlusQualityAtLeastCdbWithNoisyCrowd) {
  const std::string cql = PaperQueries()[0].cql;
  RunConfig config = HighQualityConfig();
  config.worker_quality = 0.7;
  // Enough repetitions to separate method effect from crowd noise.
  config.repetitions = 10;
  // CDB+'s worker-quality model needs workers with history (Section 5.3.2);
  // a small pool gives every worker enough answers even at this test scale.
  config.num_workers = 15;
  double plus = RunMethod(Method::kCdbPlus, *dataset_, cql, config).value().f1;
  double base = RunMethod(Method::kCdb, *dataset_, cql, config).value().f1;
  // At this reduced scale workers answer too few tasks for EM to pull ahead
  // decisively (Section 5.3.2 presumes workers with history); assert CDB+ is
  // not materially worse here — the full-size Figure 9/20 benches show the
  // positive gap.
  EXPECT_GE(plus + 0.05, base);
}

TEST_F(IntegrationTest, SelectionQueriesPruneCost) {
  // Adding a selective predicate (2J1S vs 2J) must not increase cost for the
  // graph model: refuted papers prune their join edges.
  RunConfig config = HighQualityConfig();
  config.repetitions = 1;
  double with_sel =
      RunMethod(Method::kCdb, *dataset_, PaperQueries()[1].cql, config).value().tasks;
  double without_sel =
      RunMethod(Method::kCdb, *dataset_, PaperQueries()[0].cql, config).value().tasks;
  // The 2J1S query has strictly more edges, but pruning keeps the increase
  // bounded; loosely assert it does not blow up by more than the selection
  // edge count itself.
  EXPECT_LT(with_sel, without_sel * 3.0);
}

TEST_F(IntegrationTest, BudgetCurveSaturates) {
  const std::string cql = PaperQueries()[0].cql;
  RunConfig config = HighQualityConfig();
  config.repetitions = 1;
  config.budget = 20;
  double low = RunMethod(Method::kCdb, *dataset_, cql, config).value().recall;
  config.budget = 400;
  double high = RunMethod(Method::kCdb, *dataset_, cql, config).value().recall;
  EXPECT_GE(high, low);
  EXPECT_GT(high, 0.3);
}

TEST_F(IntegrationTest, RoundLimitTradesCostForLatency) {
  const std::string cql = PaperQueries()[0].cql;
  RunConfig config = HighQualityConfig();
  config.repetitions = 1;
  config.round_limit = 1;
  double flush_cost = RunMethod(Method::kCdb, *dataset_, cql, config).value().tasks;
  config.round_limit.reset();
  double free_cost = RunMethod(Method::kCdb, *dataset_, cql, config).value().tasks;
  EXPECT_GE(flush_cost, free_cost);
}

}  // namespace
}  // namespace cdb
