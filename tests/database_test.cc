// Tests for the Database front-end (full CQL statements against a crowd
// oracle) and catalog persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/logging.h"
#include "datagen/entity_oracle.h"
#include "datagen/mini_example.h"
#include "exec/database.h"
#include "storage/csv.h"
#include "storage/persist.h"

namespace cdb {
namespace {

Database::Options PerfectOptions() {
  Database::Options options;
  options.executor.platform.worker_quality_mean = 1.0;
  options.executor.platform.worker_quality_stddev = 0.0;
  options.executor.platform.redundancy = 1;
  options.fill.worker_quality_mean = 1.0;
  options.fill.worker_quality_stddev = 0.0;
  return options;
}

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest()
      : dataset_(MakeMiniPaperExample()),
        oracle_(&dataset_),
        db_(PerfectOptions(), &oracle_) {
    // Copy the miniature tables into the database catalog.
    for (const std::string& name : dataset_.catalog.TableNames()) {
      CDB_CHECK(db_.catalog()
                    .AddTable(*dataset_.catalog.GetTable(name).value())
                    .ok());
    }
  }

  GeneratedDataset dataset_;
  EntityOracle oracle_;
  Database db_;
};

TEST_F(DatabaseTest, SelectStarReturnsConcatenatedRows) {
  StatementResult result = db_.Execute(kMiniExampleQuery).value();
  ASSERT_EQ(result.rows.size(), 4u);  // The four genuinely-true chains.
  // Paper(3) + Researcher(3) + Citation(2) + University(3) columns.
  EXPECT_EQ(result.rows[0].values.size(), 11u);
  EXPECT_GT(result.stats.tasks_asked, 0);
}

TEST_F(DatabaseTest, ProjectionsReturnRequestedColumns) {
  StatementResult result =
      db_.Execute(
             "SELECT Researcher.name, University.name FROM Researcher, "
             "University WHERE Researcher.affiliation CROWDJOIN "
             "University.name")
          .value();
  ASSERT_FALSE(result.rows.empty());
  for (const ResultRow& row : result.rows) {
    ASSERT_EQ(row.values.size(), 2u);
    EXPECT_EQ(row.values[0].type(), ValueType::kString);
  }
}

TEST_F(DatabaseTest, BudgetClauseLimitsTasks) {
  StatementResult result =
      db_.Execute(std::string(kMiniExampleQuery) + " BUDGET 5").value();
  EXPECT_LE(result.stats.tasks_asked, 5);
}

TEST_F(DatabaseTest, CreateTableAndErrors) {
  EXPECT_TRUE(db_.Execute("CREATE TABLE Extra (x varchar(8))").ok());
  EXPECT_TRUE(db_.catalog().HasTable("Extra"));
  EXPECT_FALSE(db_.Execute("CREATE TABLE Extra (x varchar(8))").ok());
  EXPECT_FALSE(db_.Execute("SELECT Nope.x FROM Nope").ok());
  EXPECT_FALSE(db_.Execute("garbage").ok());
}

TEST_F(DatabaseTest, FillReplacesCnullCells) {
  // Researcher.gender is a CROWD column full of CNULL in the miniature.
  StatementResult result = db_.Execute("FILL Researcher.gender").value();
  EXPECT_EQ(result.affected, 12);
  const Table* researcher = db_.catalog().GetTable("Researcher").value();
  for (size_t r = 0; r < researcher->num_rows(); ++r) {
    EXPECT_FALSE(researcher->row(r)[2].is_cnull());
  }
  // Idempotent: nothing left to fill.
  EXPECT_EQ(db_.Execute("FILL Researcher.gender").value().affected, 0);
}

TEST_F(DatabaseTest, FillRejectsNonCrowdColumn) {
  EXPECT_EQ(db_.Execute("FILL Researcher.name").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DatabaseTest, CollectAppendsToCrowdTable) {
  ASSERT_TRUE(db_.Execute("CREATE CROWD TABLE Venue (name varchar(64), "
                          "city CROWD varchar(32))")
                  .ok());
  StatementResult result =
      db_.Execute("COLLECT Venue.name BUDGET 500").value();
  EXPECT_GT(result.affected, 0);
  const Table* venue = db_.catalog().GetTable("Venue").value();
  EXPECT_EQ(venue->num_rows(), static_cast<size_t>(result.affected));
  // CROWD columns of collected rows await FILL.
  EXPECT_TRUE(venue->row(0)[1].is_cnull());
  // COLLECT into a non-crowd table is rejected.
  EXPECT_EQ(db_.Execute("COLLECT Researcher.name").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DatabaseTest, ExecuteScriptRunsAllStatements) {
  StatementResult result =
      db_.ExecuteScript(
             "CREATE CROWD TABLE Venue (name varchar(64)); "
             "COLLECT Venue.name BUDGET 300;")
          .value();
  EXPECT_GT(result.affected, 0);
  EXPECT_FALSE(db_.ExecuteScript("").ok());
}

TEST(EntityOracleTest, MatchesEntityLinks) {
  GeneratedDataset ds = MakeMiniPaperExample();
  EntityOracle oracle(&ds);
  // p8 "Surajit Chaudhuri" == r12 "S. Chaudhuri".
  EXPECT_TRUE(oracle.JoinMatches("Paper", "author", 7, "Researcher", "name", 11));
  EXPECT_FALSE(oracle.JoinMatches("Paper", "author", 1, "Researcher", "name", 3));
  EXPECT_TRUE(oracle.SelectionMatches("University", "country", 0, "USA"));
  EXPECT_FALSE(oracle.SelectionMatches("University", "country", 10, "USA"));
  // Unknown columns never match.
  EXPECT_FALSE(oracle.JoinMatches("Paper", "bogus", 0, "Researcher", "name", 0));
}

TEST(PersistTest, SchemaRoundTrip) {
  Table table("T", Schema({{"name", ValueType::kString, false},
                           {"gender", ValueType::kString, true},
                           {"count", ValueType::kInt64, false}}),
              /*is_crowd_table=*/true);
  ASSERT_TRUE(table.AppendRow({Value::Str("a"), Value::CNull(), Value::Int(1)}).ok());
  std::string schema_text = SchemaToText(table);
  std::string csv_text = TableToCsv(table);
  Table loaded = TableFromText("T", schema_text, csv_text).value();
  EXPECT_TRUE(loaded.is_crowd_table());
  ASSERT_EQ(loaded.num_rows(), 1u);
  EXPECT_TRUE(loaded.schema().column(1).is_crowd);
  EXPECT_TRUE(loaded.row(0)[1].is_cnull());
  EXPECT_EQ(loaded.row(0)[2].AsInt(), 1);
}

TEST(PersistTest, CatalogRoundTripOnDisk) {
  GeneratedDataset ds = MakeMiniPaperExample();
  std::string dir =
      (std::filesystem::temp_directory_path() / "cdb_persist_test").string();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(SaveCatalog(ds.catalog, dir).ok());
  Catalog loaded = LoadCatalog(dir).value();
  EXPECT_EQ(loaded.TableNames().size(), 4u);
  const Table* paper = loaded.GetTable("Paper").value();
  EXPECT_EQ(paper->num_rows(), 8u);
  EXPECT_EQ(paper->row(0)[0].AsString(), "Michael J. Franklin");
  std::filesystem::remove_all(dir);
}

TEST(PersistTest, LoadErrors) {
  EXPECT_FALSE(LoadCatalog("/nonexistent/cdb/dir").ok());
  EXPECT_FALSE(TableFromText("T", "", "a\n1").ok());
  EXPECT_FALSE(TableFromText("T", "a|BLOB", "a\n1").ok());
}

}  // namespace
}  // namespace cdb
