#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace cdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no table 'foo'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no table 'foo'");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no table 'foo'");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
        StatusCode::kParseError, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello world");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello world");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  CDB_ASSIGN_OR_RETURN(int half, HalveEven(x));
  CDB_RETURN_IF_ERROR(Status::Ok());
  *out = half;
  return Status::Ok();
}

TEST(ResultTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseMacros(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(99);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ClampedGaussianStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.ClampedGaussian(0.8, 0.1, 0.0, 1.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(0.8, 0.1);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.8, 0.005);
  EXPECT_NEAR(std::sqrt(var), 0.1, 0.01);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(13);
  int first_bucket = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    int64_t v = rng.Zipf(100, 1.0);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    if (v == 0) ++first_bucket;
  }
  // Rank 1 of Zipf(1.0) over 100 items has probability ~0.19; uniform would
  // be 0.01.
  EXPECT_GT(first_bucket, n / 20);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[static_cast<size_t>(rng.Zipf(10, 0.0))];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(StringUtilTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("SigMod'17"), "sigmod'17");
  EXPECT_EQ(ToUpper("crowd"), "CROWD");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  std::vector<std::string> parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  std::vector<std::string> parts = SplitWhitespace("  a \t b\nc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StrPrintf) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrPrintf("%.2f", 1.5), "1.50");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("sigmod17", "sig"));
  EXPECT_FALSE(StartsWith("sig", "sigmod"));
  EXPECT_TRUE(EndsWith("sigmod17", "17"));
  EXPECT_FALSE(EndsWith("17", "sigmod17"));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("CROWDJOIN", "crowdjoin"));
  EXPECT_FALSE(EqualsIgnoreCase("crowd", "crowds"));
}

TEST(StringUtilTest, NormalizeWhitespace) {
  EXPECT_EQ(NormalizeWhitespace("  a \t b  "), "a b");
  EXPECT_EQ(NormalizeWhitespace("one"), "one");
  EXPECT_EQ(NormalizeWhitespace(""), "");
}

TEST(MutexTest, MutualExclusionUnderContention) {
  // Smoke test for the annotated wrappers (common/mutex.h): increments under
  // MutexLock from many threads must not lose updates. The interesting
  // checking happens at compile time (clang -Wthread-safety); this confirms
  // the wrappers actually lock at runtime too.
  struct Counter {
    Mutex mu;
    int64_t value CDB_GUARDED_BY(mu) = 0;
  } counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(counter.mu);
        ++counter.value;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(counter.mu);
  EXPECT_EQ(counter.value, int64_t{kThreads} * kIncrements);
}

TEST(MutexTest, CondVarWakesWaiter) {
  struct Box {
    Mutex mu;
    CondVar cv;
    bool ready CDB_GUARDED_BY(mu) = false;
  } box;
  std::thread producer([&box] {
    MutexLock lock(box.mu);
    box.ready = true;
    box.cv.NotifyOne();
  });
  {
    MutexLock lock(box.mu);
    while (!box.ready) box.cv.Wait(box.mu);
    EXPECT_TRUE(box.ready);
  }
  producer.join();
}

TEST(MutexTest, TryLockReportsContention) {
  // Branch directly on TryLock() — the shape clang's flow-sensitive
  // thread-safety analysis understands for CDB_TRY_ACQUIRE.
  Mutex mu;
  if (!mu.TryLock()) {
    FAIL() << "uncontended TryLock failed";
  }
  std::thread other([&mu] {
    if (mu.TryLock()) {
      mu.Unlock();
      ADD_FAILURE() << "TryLock succeeded on a mutex held by another thread";
    }
  });
  other.join();
  mu.Unlock();
}

}  // namespace
}  // namespace cdb
