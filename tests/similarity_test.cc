#include <gtest/gtest.h>

#include <cmath>

#include "similarity/similarity.h"
#include "similarity/tokenizer.h"

namespace cdb {
namespace {

TEST(TokenizerTest, QGramsOfShortString) {
  std::vector<std::string> grams = QGramSet("a", 2);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "a");
}

TEST(TokenizerTest, QGramsAreSortedUniqueLowercased) {
  std::vector<std::string> grams = QGramSet("ABAB", 2);
  // "abab" -> {ab, ba, ab} -> {ab, ba}.
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "ab");
  EXPECT_EQ(grams[1], "ba");
}

TEST(TokenizerTest, QGramsEmpty) { EXPECT_TRUE(QGramSet("", 2).empty()); }

TEST(TokenizerTest, WordTokensStripPunctuation) {
  std::vector<std::string> tokens = WordTokenSet("Query, Processing.");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "processing");
  EXPECT_EQ(tokens[1], "query");
}

TEST(TokenizerTest, IntersectionSize) {
  EXPECT_EQ(SortedIntersectionSize({"a", "b", "c"}, {"b", "c", "d"}), 2u);
  EXPECT_EQ(SortedIntersectionSize({}, {"a"}), 0u);
  EXPECT_EQ(SortedIntersectionSize({"a"}, {"a"}), 1u);
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("sigmod", "sigir"), EditDistance("sigir", "sigmod"));
}

TEST(NormalizedEditSimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "xyz"), 0.0);
}

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {"a"}), 1.0);
}

TEST(CosineTest, KnownValues) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({"a"}, {"a"}), 1.0);
  EXPECT_NEAR(CosineSimilarity({"a", "b"}, {"b", "c", "d"}),
              1.0 / std::sqrt(6.0), 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {"a"}), 0.0);
}

TEST(ComputeSimilarityTest, NoSimIsConstant) {
  EXPECT_DOUBLE_EQ(ComputeSimilarity(SimilarityFunction::kNoSim, "a", "zzz"), 0.5);
  EXPECT_DOUBLE_EQ(ComputeSimilarity(SimilarityFunction::kNoSim, "", ""), 0.5);
}

TEST(ComputeSimilarityTest, CaseInsensitive) {
  for (SimilarityFunction fn :
       {SimilarityFunction::kEditDistance, SimilarityFunction::kWordJaccard,
        SimilarityFunction::kQGramJaccard, SimilarityFunction::kQGramCosine}) {
    EXPECT_DOUBLE_EQ(ComputeSimilarity(fn, "SIGMOD", "sigmod"), 1.0)
        << SimilarityFunctionName(fn);
  }
}

TEST(ComputeSimilarityTest, PaperExampleTwoGramJaccard) {
  // "sigmod" vs "sigmod16": grams {si,ig,gm,mo,od} vs the same + {d1,16};
  // Jaccard = 5/7.
  EXPECT_NEAR(
      ComputeSimilarity(SimilarityFunction::kQGramJaccard, "sigmod", "sigmod16"),
      5.0 / 7.0, 1e-12);
}

TEST(ComputeSimilarityTest, NamesAreKept) {
  EXPECT_STREQ(SimilarityFunctionName(SimilarityFunction::kNoSim), "NoSim");
  EXPECT_STREQ(SimilarityFunctionName(SimilarityFunction::kEditDistance), "ED");
}

// Property sweep: all functions are symmetric, bounded to [0,1], and give 1
// on identical strings.
class SimilarityPropertyTest
    : public ::testing::TestWithParam<SimilarityFunction> {};

TEST_P(SimilarityPropertyTest, SymmetricBoundedReflexive) {
  const SimilarityFunction fn = GetParam();
  const std::vector<std::string> samples = {
      "", "a", "ab", "University of California", "Univ. of California",
      "Michael J. Franklin", "franklin michael", "CrowdDB", "sigmod 2017",
      "a very long string about crowdsourced query optimization",
  };
  for (const std::string& a : samples) {
    for (const std::string& b : samples) {
      double ab = ComputeSimilarity(fn, a, b);
      double ba = ComputeSimilarity(fn, b, a);
      EXPECT_DOUBLE_EQ(ab, ba);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
    if (fn != SimilarityFunction::kNoSim) {
      EXPECT_DOUBLE_EQ(ComputeSimilarity(fn, a, a), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, SimilarityPropertyTest,
    ::testing::Values(SimilarityFunction::kNoSim,
                      SimilarityFunction::kEditDistance,
                      SimilarityFunction::kWordJaccard,
                      SimilarityFunction::kQGramJaccard,
                      SimilarityFunction::kQGramCosine));

}  // namespace
}  // namespace cdb
