#include <gtest/gtest.h>

#include "cql/analyzer.h"
#include "cql/lexer.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"

namespace cdb {
namespace {

// ---------------------------------------------------------------- Lexer ---

TEST(LexerTest, BasicTokens) {
  std::vector<Token> tokens = Tokenize("SELECT * FROM T WHERE a.b = 'x';").value();
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].type, TokenType::kSymbol);
  EXPECT_EQ(tokens[1].text, "*");
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
}

TEST(LexerTest, StringLiterals) {
  std::vector<Token> tokens = Tokenize("'ab''c' \"dq\"").value();
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "ab'c");
  EXPECT_EQ(tokens[1].text, "dq");
}

TEST(LexerTest, Numbers) {
  std::vector<Token> tokens = Tokenize("123 4.5").value();
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
  EXPECT_EQ(tokens[0].text, "123");
  EXPECT_EQ(tokens[1].text, "4.5");
}

TEST(LexerTest, Comments) {
  std::vector<Token> tokens = Tokenize("SELECT -- hi\n *").value();
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "*");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
}

// --------------------------------------------------------------- Parser ---

TEST(ParserTest, SelectStarWithCrowdJoin) {
  Statement stmt = ParseStatement(kMiniExampleQuery).value();
  const auto& select = std::get<SelectStatement>(stmt);
  EXPECT_TRUE(select.select_star);
  ASSERT_EQ(select.tables.size(), 4u);
  ASSERT_EQ(select.predicates.size(), 3u);
  EXPECT_EQ(select.predicates[0].kind, PredicateKind::kCrowdJoin);
  EXPECT_EQ(select.predicates[0].left.ToString(), "Paper.Author");
  EXPECT_EQ(select.predicates[0].right.ToString(), "Researcher.Name");
}

TEST(ParserTest, SelectionPredicates) {
  Statement stmt = ParseStatement(
                       "SELECT University.name FROM University "
                       "WHERE University.country CROWDEQUAL 'USA' "
                       "AND University.city = 'Chicago'")
                       .value();
  const auto& select = std::get<SelectStatement>(stmt);
  ASSERT_EQ(select.predicates.size(), 2u);
  EXPECT_EQ(select.predicates[0].kind, PredicateKind::kCrowdEqual);
  EXPECT_EQ(select.predicates[0].constant, "USA");
  EXPECT_EQ(select.predicates[1].kind, PredicateKind::kEqualConst);
}

TEST(ParserTest, EquiJoinVsConstEqual) {
  Statement stmt = ParseStatement(
                       "SELECT A.x FROM A, B WHERE A.x = B.y AND A.z = '3'")
                       .value();
  const auto& select = std::get<SelectStatement>(stmt);
  EXPECT_EQ(select.predicates[0].kind, PredicateKind::kEquiJoin);
  EXPECT_EQ(select.predicates[1].kind, PredicateKind::kEqualConst);
}

TEST(ParserTest, Budget) {
  Statement stmt =
      ParseStatement("SELECT A.x FROM A WHERE A.x CROWDEQUAL 'v' BUDGET 50")
          .value();
  EXPECT_EQ(std::get<SelectStatement>(stmt).budget.value(), 50);
  EXPECT_FALSE(
      ParseStatement("SELECT A.x FROM A WHERE A.x CROWDEQUAL 'v' BUDGET 0").ok());
}

TEST(ParserTest, CreateTableWithCrowdColumn) {
  // The paper's DDL example (Appendix A): CROWD before the type.
  Statement stmt = ParseStatement(
                       "CREATE TABLE Researcher (name varchar(64), "
                       "gender CROWD varchar(16), affiliation CROWD varchar(64));")
                       .value();
  const auto& create = std::get<CreateTableStatement>(stmt);
  EXPECT_EQ(create.name, "Researcher");
  EXPECT_FALSE(create.crowd_table);
  ASSERT_EQ(create.columns.size(), 3u);
  EXPECT_FALSE(create.columns[0].is_crowd);
  EXPECT_TRUE(create.columns[1].is_crowd);
  EXPECT_TRUE(create.columns[2].is_crowd);
}

TEST(ParserTest, CreateCrowdTable) {
  Statement stmt = ParseStatement(
                       "CREATE CROWD TABLE University (name varchar(64), "
                       "city varchar(64), country varchar(64));")
                       .value();
  const auto& create = std::get<CreateTableStatement>(stmt);
  EXPECT_TRUE(create.crowd_table);
  EXPECT_EQ(create.columns.size(), 3u);
}

TEST(ParserTest, ColumnTypes) {
  Statement stmt =
      ParseStatement("CREATE TABLE T (a int, b double, c varchar(10))").value();
  const auto& create = std::get<CreateTableStatement>(stmt);
  EXPECT_EQ(create.columns[0].type, ValueType::kInt64);
  EXPECT_EQ(create.columns[1].type, ValueType::kDouble);
  EXPECT_EQ(create.columns[2].type, ValueType::kString);
  EXPECT_FALSE(ParseStatement("CREATE TABLE T (a blob)").ok());
}

TEST(ParserTest, Fill) {
  Statement stmt = ParseStatement(
                       "FILL Researcher.affiliation "
                       "WHERE Researcher.gender = 'female' BUDGET 10")
                       .value();
  const auto& fill = std::get<FillStatement>(stmt);
  EXPECT_EQ(fill.target.ToString(), "Researcher.affiliation");
  EXPECT_EQ(fill.predicates.size(), 1u);
  EXPECT_EQ(fill.budget.value(), 10);
  // Join predicates are rejected in FILL.
  EXPECT_FALSE(
      ParseStatement("FILL A.x WHERE A.y CROWDJOIN B.z").ok());
}

TEST(ParserTest, Collect) {
  Statement stmt = ParseStatement(
                       "COLLECT University.name, University.city "
                       "WHERE University.country = 'US' BUDGET 100")
                       .value();
  const auto& collect = std::get<CollectStatement>(stmt);
  ASSERT_EQ(collect.targets.size(), 2u);
  EXPECT_EQ(collect.budget.value(), 100);
  EXPECT_FALSE(ParseStatement("COLLECT A.x, B.y").ok());  // Two tables.
}

TEST(ParserTest, Script) {
  std::vector<Statement> script =
      ParseScript("CREATE TABLE A (x varchar(4)); SELECT A.x FROM A WHERE "
                  "A.x CROWDEQUAL 'v';")
          .value();
  EXPECT_EQ(script.size(), 2u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("SELECT FROM A").ok());
  EXPECT_FALSE(ParseStatement("SELECT A.x").ok());
  EXPECT_FALSE(ParseStatement("UPDATE A SET x = 1").ok());
  EXPECT_FALSE(ParseStatement("SELECT A.x FROM A trailing junk").ok());
  EXPECT_FALSE(ParseStatement("SELECT A.x FROM A WHERE A.x CROWDJOIN 'v'").ok());
}

// ------------------------------------------------------------- Analyzer ---

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest() : dataset_(MakeMiniPaperExample()) {}

  ResolvedQuery Analyze(const std::string& cql) {
    Statement stmt = ParseStatement(cql).value();
    return AnalyzeSelect(std::get<SelectStatement>(stmt), dataset_.catalog).value();
  }

  Status AnalyzeError(const std::string& cql) {
    Statement stmt = ParseStatement(cql).value();
    auto result = AnalyzeSelect(std::get<SelectStatement>(stmt), dataset_.catalog);
    return result.ok() ? Status::Ok() : result.status();
  }

  GeneratedDataset dataset_;
};

TEST_F(AnalyzerTest, ResolvesMiniExampleQuery) {
  ResolvedQuery query = Analyze(kMiniExampleQuery);
  EXPECT_EQ(query.tables.size(), 4u);
  EXPECT_EQ(query.joins.size(), 3u);
  EXPECT_TRUE(query.selections.empty());
  EXPECT_TRUE(query.select_star);
  EXPECT_EQ(query.num_predicates(), 3u);
  for (const ResolvedJoin& join : query.joins) EXPECT_TRUE(join.is_crowd);
}

TEST_F(AnalyzerTest, ResolvesSelections) {
  ResolvedQuery query = Analyze(
      "SELECT Paper.title FROM Paper "
      "WHERE Paper.conference CROWDEQUAL 'sigmod'");
  ASSERT_EQ(query.selections.size(), 1u);
  EXPECT_TRUE(query.selections[0].is_crowd);
  EXPECT_EQ(query.selections[0].value, "sigmod");
  ASSERT_EQ(query.projections.size(), 1u);
  EXPECT_EQ(query.projections[0].rel, 0);
}

TEST_F(AnalyzerTest, RejectsUnknownTableAndColumn) {
  EXPECT_EQ(AnalyzeError("SELECT Nope.x FROM Nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(AnalyzeError("SELECT Paper.bogus FROM Paper").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(AnalyzeError("SELECT Citation.title FROM Paper").code(),
            StatusCode::kNotFound);
}

TEST_F(AnalyzerTest, RejectsCrossProducts) {
  EXPECT_EQ(AnalyzeError("SELECT Paper.title FROM Paper, Citation").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, RejectsSelfJoin) {
  EXPECT_EQ(AnalyzeError("SELECT Paper.title FROM Paper, Paper "
                         "WHERE Paper.title CROWDJOIN Paper.title")
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, ApplyCreateTable) {
  Catalog catalog;
  Statement stmt =
      ParseStatement("CREATE TABLE T (a varchar(4), b int)").value();
  ASSERT_TRUE(ApplyCreateTable(std::get<CreateTableStatement>(stmt), catalog).ok());
  EXPECT_TRUE(catalog.HasTable("T"));
  // Duplicate table rejected.
  EXPECT_FALSE(
      ApplyCreateTable(std::get<CreateTableStatement>(stmt), catalog).ok());
  // Duplicate column rejected.
  Statement dup = ParseStatement("CREATE TABLE U (a int, A int)").value();
  EXPECT_FALSE(ApplyCreateTable(std::get<CreateTableStatement>(dup), catalog).ok());
}

}  // namespace
}  // namespace cdb
