#include <gtest/gtest.h>

#include "cql/parser.h"
#include "datagen/mini_example.h"
#include "graph/query_graph.h"
#include "tests/test_util.h"

namespace cdb {
namespace {

ResolvedQuery Resolve(const GeneratedDataset& ds, const std::string& cql) {
  Statement stmt = ParseStatement(cql).value();
  return AnalyzeSelect(std::get<SelectStatement>(stmt), ds.catalog).value();
}

TEST(QueryGraphTest, BuildsMiniExample) {
  GeneratedDataset ds = MakeMiniPaperExample();
  ResolvedQuery query = Resolve(ds, kMiniExampleQuery);
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();

  EXPECT_EQ(graph.num_base_relations(), 4);
  EXPECT_EQ(graph.num_relations(), 4);
  EXPECT_EQ(graph.num_predicates(), 3);
  EXPECT_GT(graph.num_edges(), 0);
  // Every edge weight respects the epsilon threshold and every crowd edge
  // starts Unknown.
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    EXPECT_GE(edge.weight, 0.3);
    EXPECT_LE(edge.weight, 1.0);
    EXPECT_TRUE(edge.is_crowd);
    EXPECT_EQ(edge.color, EdgeColor::kUnknown);
  }
}

TEST(QueryGraphTest, TruePairsAreEdges) {
  // Real matches in the miniature tables have high similarity, so they must
  // survive the epsilon pruning: e.g. paper p4 "W. Bruce Croft" and
  // researcher r7 "Bruce W Croft" (rows 3 and 7).
  GeneratedDataset ds = MakeMiniPaperExample();
  ResolvedQuery query = Resolve(ds, kMiniExampleQuery);
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  VertexId p4 = graph.FindVertex(0, 3);
  VertexId r8 = graph.FindVertex(1, 7);
  ASSERT_NE(p4, kNoVertex);
  ASSERT_NE(r8, kNoVertex);
  bool found = false;
  for (EdgeId e : graph.IncidentEdges(p4, 0)) {
    if (graph.Opposite(e, p4) == r8) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(QueryGraphTest, SelectionAddsPseudoRelation) {
  GeneratedDataset ds = MakeMiniPaperExample();
  ResolvedQuery query = Resolve(ds,
                                "SELECT Paper.title FROM Paper "
                                "WHERE Paper.conference CROWDEQUAL 'sigmod'");
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  EXPECT_EQ(graph.num_base_relations(), 1);
  EXPECT_EQ(graph.num_relations(), 2);
  EXPECT_EQ(graph.relation_size(1), 1);  // One pseudo vertex.
  EXPECT_TRUE(graph.predicate(0).is_selection);
  // Several conference strings contain "sigmod" so edges exist.
  EXPECT_GT(graph.num_edges(), 3);
}

TEST(QueryGraphTest, TraditionalSelectionIsBlueAndFree) {
  GeneratedDataset ds = MakeMiniPaperExample();
  ResolvedQuery query = Resolve(ds,
                                "SELECT Paper.title FROM Paper "
                                "WHERE Paper.conference = 'sigmod14'");
  QueryGraph graph = QueryGraph::Build(query, GraphOptions{}).value();
  // Exactly two papers have conference string "sigmod14" (p5, p7).
  EXPECT_EQ(graph.num_edges(), 2);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EXPECT_FALSE(graph.edge(e).is_crowd);
    EXPECT_EQ(graph.edge(e).color, EdgeColor::kBlue);
    EXPECT_DOUBLE_EQ(graph.edge(e).weight, 1.0);
  }
}

TEST(QueryGraphTest, EpsilonControlsDensity) {
  GeneratedDataset ds = MakeMiniPaperExample();
  ResolvedQuery query = Resolve(ds, kMiniExampleQuery);
  GraphOptions loose;
  loose.epsilon = 0.2;
  GraphOptions tight;
  tight.epsilon = 0.6;
  int64_t loose_edges = QueryGraph::Build(query, loose).value().num_edges();
  int64_t tight_edges = QueryGraph::Build(query, tight).value().num_edges();
  EXPECT_GT(loose_edges, tight_edges);
}

TEST(QueryGraphTest, SetColorAndCounters) {
  QueryGraph graph = testing_util::MakeFigure1Chain();
  EXPECT_EQ(graph.num_edges(), 12);
  EXPECT_EQ(graph.CountEdges(EdgeColor::kUnknown), 12);
  graph.SetColor(0, EdgeColor::kBlue);
  graph.SetColor(1, EdgeColor::kRed);
  EXPECT_EQ(graph.CountEdges(EdgeColor::kBlue), 1);
  EXPECT_EQ(graph.CountEdges(EdgeColor::kRed), 1);
  EXPECT_EQ(graph.CountEdges(EdgeColor::kUnknown), 10);
  // Re-coloring with the same color is a no-op.
  graph.SetColor(0, EdgeColor::kBlue);
}

TEST(QueryGraphTest, SyntheticAccessors) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  EXPECT_EQ(graph.num_relations(), 4);
  EXPECT_EQ(graph.num_predicates(), 3);
  // p1 is row 1 of relation 2; it has three predicate-1 edges and one
  // predicate-2 edge.
  VertexId p1 = graph.FindVertex(2, 1);
  ASSERT_NE(p1, kNoVertex);
  EXPECT_EQ(graph.IncidentEdges(p1, 1).size(), 3u);
  EXPECT_EQ(graph.IncidentEdges(p1, 2).size(), 1u);
  EXPECT_EQ(graph.AllIncidentEdges(p1).size(), 4u);
  EXPECT_EQ(graph.FindVertex(2, 99), kNoVertex);
  // Opposite endpoints resolve.
  EdgeId e = graph.IncidentEdges(p1, 2)[0];
  VertexId c1 = graph.Opposite(e, p1);
  EXPECT_EQ(graph.vertex(c1).rel, 3);
  EXPECT_EQ(graph.Opposite(e, c1), p1);
}

TEST(QueryGraphTest, DebugStringMentionsEdges) {
  QueryGraph graph = testing_util::MakeFigure1Chain();
  std::string dump = graph.DebugString();
  EXPECT_NE(dump.find("pred0"), std::string::npos);
  EXPECT_NE(dump.find("pred1"), std::string::npos);
}

}  // namespace
}  // namespace cdb
