// Legacy-vs-flat byte-identity for the optimizer data layouts: the CSR
// incidence index and SoA edge columns of QueryGraph, the cached
// StructureCache selection skeletons (star buckets + Lemma-1 layer pairs),
// the reusable FlowArena/Dinic scratch, and the SampleMinCutOrder fast path.
// The legacy rebuild-per-call implementations are retained as the identity
// oracle; every test here asserts the flat path reproduces them byte for
// byte across join shapes, seeds, colorings, and thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench_util/metrics.h"
#include "common/random.h"
#include "cost/known_color.h"
#include "cost/sampling.h"
#include "cost/structure_cache.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"
#include "exec/executor.h"
#include "flow/dinic.h"
#include "flow/min_cut.h"
#include "graph/query_graph.h"
#include "graph/structure.h"
#include "tests/test_util.h"

namespace cdb {
namespace {

enum class Shape { kChain, kStar, kStarParallel, kTree, kCyclic };

const Shape kAllShapes[] = {Shape::kChain, Shape::kStar, Shape::kStarParallel,
                            Shape::kTree, Shape::kCyclic};

const char* ShapeName(Shape shape) {
  switch (shape) {
    case Shape::kChain:
      return "chain";
    case Shape::kStar:
      return "star";
    case Shape::kStarParallel:
      return "star-parallel";
    case Shape::kTree:
      return "tree";
    case Shape::kCyclic:
      return "cyclic";
  }
  return "?";
}

// A random synthetic graph of the given relation-level shape: every
// predicate gets a random bipartite edge set (density ~0.5) with weights in
// [0.3, 0.95). Deterministic in (shape, seed, size).
QueryGraph MakeShapeGraph(Shape shape, uint64_t seed, int size) {
  std::vector<PredicateInfo> preds;
  switch (shape) {
    case Shape::kChain:
      preds = {{true, false, 0, 1}, {true, false, 1, 2}, {true, false, 2, 3}};
      break;
    case Shape::kStar:
      preds = {{true, false, 0, 1}, {true, false, 0, 2}, {true, false, 0, 3}};
      break;
    case Shape::kStarParallel:
      // Two parallel predicates on the 0-1 pair exercise the multi-member
      // units of the star rule. Parallel predicates collapse into one group,
      // so three distinct leaves are needed to stay a star (two groups would
      // classify as a chain).
      preds = {{true, false, 0, 1},
               {true, false, 0, 1},
               {true, false, 0, 2},
               {true, false, 0, 3}};
      break;
    case Shape::kTree:
      preds = {{true, false, 0, 1},
               {true, false, 1, 2},
               {true, false, 2, 3},
               {true, false, 2, 4}};
      break;
    case Shape::kCyclic:
      preds = {{true, false, 0, 1}, {true, false, 1, 2}, {true, false, 2, 0}};
      break;
  }
  Rng rng(seed, static_cast<uint64_t>(shape));
  std::vector<QueryGraph::SyntheticEdge> edges;
  for (int p = 0; p < static_cast<int>(preds.size()); ++p) {
    bool any = false;
    for (int a = 0; a < size; ++a) {
      for (int b = 0; b < size; ++b) {
        if (!rng.Bernoulli(0.5)) continue;
        any = true;
        edges.push_back({p, a, b, rng.Uniform(0.3, 0.95)});
      }
    }
    // Every predicate needs at least one edge so the relation-level shape is
    // the intended one.
    if (!any) edges.push_back({p, 0, 0, rng.Uniform(0.3, 0.95)});
  }
  int num_rels = 0;
  for (const PredicateInfo& info : preds) {
    num_rels = std::max({num_rels, info.left_rel + 1, info.right_rel + 1});
  }
  return QueryGraph::MakeSynthetic(num_rels, preds, edges);
}

std::vector<EdgeColor> RandomFullColoring(const QueryGraph& graph, Rng& rng) {
  std::vector<EdgeColor> colors(static_cast<size_t>(graph.num_edges()));
  for (auto& c : colors) {
    c = rng.Bernoulli(0.5) ? EdgeColor::kBlue : EdgeColor::kRed;
  }
  return colors;
}

TEST(ShapeGraphTest, ClassifiesAsIntended) {
  auto classify = [](Shape shape) {
    QueryGraph graph = MakeShapeGraph(shape, 7, 5);
    return Classify(BuildRelGraph(graph));
  };
  EXPECT_EQ(classify(Shape::kChain), JoinStructure::kChain);
  EXPECT_EQ(classify(Shape::kStar), JoinStructure::kStar);
  EXPECT_EQ(classify(Shape::kStarParallel), JoinStructure::kStar);
  EXPECT_EQ(classify(Shape::kTree), JoinStructure::kTree);
  EXPECT_EQ(classify(Shape::kCyclic), JoinStructure::kCyclic);
}

// --- CSR incidence invariants -------------------------------------------

// The CSR postings must reproduce the legacy nested-vector emission order:
// per (vertex, predicate) slot, ascending edge id (AddEdge appended ids in
// increasing order), and each edge appears in exactly its two endpoint
// slots.
TEST(QueryGraphFlatTest, CsrIncidenceMatchesLegacyEmissionOrder) {
  for (Shape shape : kAllShapes) {
    SCOPED_TRACE(ShapeName(shape));
    QueryGraph graph = MakeShapeGraph(shape, 11, 6);
    int64_t total_postings = 0;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      for (int p = 0; p < graph.num_predicates(); ++p) {
        // Brute-force expectation from the SoA columns, in edge-id order —
        // the order the legacy incident_[v][p] push_backs produced.
        std::vector<EdgeId> expected;
        for (EdgeId e = 0; e < graph.num_edges(); ++e) {
          if (graph.edge_pred(e) != p) continue;
          if (graph.edge_u(e) == v) expected.push_back(e);
          if (graph.edge_v(e) == v) expected.push_back(e);
        }
        EdgeSpan span = graph.IncidentEdges(v, p);
        ASSERT_EQ(std::vector<EdgeId>(span.begin(), span.end()), expected);
        total_postings += static_cast<int64_t>(span.size());
      }
    }
    EXPECT_EQ(total_postings, 2 * static_cast<int64_t>(graph.num_edges()));
  }
}

TEST(QueryGraphFlatTest, AppendIncidentEdgesMatchesAllIncidentEdges) {
  QueryGraph graph = MakeShapeGraph(Shape::kTree, 3, 6);
  std::vector<EdgeId> buffer = {kNoEdge};  // Pre-existing content survives.
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    std::vector<EdgeId> fresh = graph.AllIncidentEdges(v);
    // AllIncidentEdges is the concatenation over predicates.
    std::vector<EdgeId> concat;
    for (int p = 0; p < graph.num_predicates(); ++p) {
      EdgeSpan span = graph.IncidentEdges(v, p);
      concat.insert(concat.end(), span.begin(), span.end());
    }
    EXPECT_EQ(fresh, concat);
    size_t before = buffer.size();
    graph.AppendIncidentEdges(v, &buffer);
    EXPECT_EQ(std::vector<EdgeId>(buffer.begin() + before, buffer.end()),
              fresh);
  }
  EXPECT_EQ(buffer.front(), kNoEdge);
}

TEST(QueryGraphFlatTest, RelationPositionMatchesVertexLists) {
  for (Shape shape : kAllShapes) {
    QueryGraph graph = MakeShapeGraph(shape, 5, 6);
    for (int rel = 0; rel < graph.num_relations(); ++rel) {
      const std::vector<VertexId>& vs = graph.relation_vertices(rel);
      for (size_t i = 0; i < vs.size(); ++i) {
        EXPECT_EQ(graph.relation_position(vs[i]), static_cast<int32_t>(i));
        EXPECT_EQ(graph.vertex(vs[i]).rel, rel);
      }
    }
  }
}

TEST(QueryGraphFlatTest, SoAColumnsAgreeWithEdgeAccessor) {
  QueryGraph graph = MakeShapeGraph(Shape::kCyclic, 17, 6);
  graph.SetColor(0, EdgeColor::kRed);
  graph.SetColor(1, EdgeColor::kBlue);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    EXPECT_EQ(edge.u, graph.edge_u(e));
    EXPECT_EQ(edge.v, graph.edge_v(e));
    EXPECT_EQ(edge.pred, graph.edge_pred(e));
    EXPECT_EQ(edge.weight, graph.edge_weight(e));
    EXPECT_EQ(edge.color, graph.edge_color(e));
    EXPECT_EQ(edge.is_crowd, graph.edge_is_crowd(e));
    EXPECT_EQ(static_cast<EdgeColor>(graph.edge_colors()[e]), edge.color);
    EXPECT_EQ(graph.edge_weights()[e], edge.weight);
  }
}

// --- Known-color selection: cached vs legacy ----------------------------

TEST(StructureCacheTest, SelectTasksKnownColorsMatchesLegacy) {
  for (Shape shape : kAllShapes) {
    SCOPED_TRACE(ShapeName(shape));
    for (uint64_t seed : {1u, 2u, 3u}) {
      QueryGraph graph = MakeShapeGraph(shape, seed, 6);
      StructureCache cache = StructureCache::Build(graph);
      SelectionArena arena;
      Rng rng(seed, 99);
      for (int trial = 0; trial < 25; ++trial) {
        std::vector<EdgeColor> colors = RandomFullColoring(graph, rng);
        std::vector<EdgeId> legacy = SelectTasksKnownColors(graph, colors);
        std::vector<EdgeId> cached;
        SelectTasksKnownColors(graph, colors, cache, &arena, &cached);
        ASSERT_EQ(cached, legacy)
            << ShapeName(shape) << " seed=" << seed << " trial=" << trial;
      }
    }
  }
}

TEST(StructureCacheTest, StarSelectionHoistedRelGraphMatchesWrapper) {
  for (Shape shape : {Shape::kStar, Shape::kStarParallel}) {
    QueryGraph graph = MakeShapeGraph(shape, 13, 6);
    RelGraph rel_graph = BuildRelGraph(graph);
    const int center = StarCenter(rel_graph);
    ASSERT_GE(center, 0);
    Rng rng(13, 7);
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<EdgeColor> colors = RandomFullColoring(graph, rng);
      EXPECT_EQ(StarSelection(graph, rel_graph, center, colors),
                StarSelection(graph, center, colors));
    }
  }
}

TEST(StructureCacheTest, StarCacheMatchesLegacyStarSelection) {
  for (Shape shape : {Shape::kStar, Shape::kStarParallel}) {
    SCOPED_TRACE(ShapeName(shape));
    QueryGraph graph = MakeShapeGraph(shape, 21, 7);
    RelGraph rel_graph = BuildRelGraph(graph);
    const int center = StarCenter(rel_graph);
    StarCache cache = BuildStarCache(graph, rel_graph, center);
    Rng rng(21, 3);
    std::vector<EdgeId> cached;
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<EdgeColor> colors = RandomFullColoring(graph, rng);
      StarSelection(graph, cache, colors, &cached);
      ASSERT_EQ(cached, StarSelection(graph, rel_graph, center, colors));
    }
  }
}

// The same arena reused across many colorings produces exactly what a fresh
// arena produces — the reset-not-rebuild contract.
TEST(StructureCacheTest, ArenaResetEqualsFresh) {
  for (Shape shape : {Shape::kChain, Shape::kTree, Shape::kCyclic}) {
    SCOPED_TRACE(ShapeName(shape));
    QueryGraph graph = MakeShapeGraph(shape, 31, 6);
    StructureCache cache = StructureCache::Build(graph);
    SelectionArena reused;
    Rng rng(31, 5);
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<EdgeColor> colors = RandomFullColoring(graph, rng);
      std::vector<EdgeId> from_reused;
      SelectTasksKnownColors(graph, colors, cache, &reused, &from_reused);
      SelectionArena fresh;
      std::vector<EdgeId> from_fresh;
      SelectTasksKnownColors(graph, colors, cache, &fresh, &from_fresh);
      ASSERT_EQ(from_reused, from_fresh) << "trial=" << trial;
    }
  }
}

TEST(StructureCacheTest, ChainMinCutCachedMatchesLegacyOrdering) {
  for (Shape shape : {Shape::kChain, Shape::kTree, Shape::kCyclic}) {
    SCOPED_TRACE(ShapeName(shape));
    QueryGraph graph = MakeShapeGraph(shape, 41, 6);
    RelGraph rel_graph = BuildRelGraph(graph);
    ChainPlan plan = BuildChainPlan(graph);
    MinCutCache cache = BuildMinCutCache(graph, rel_graph, plan);
    FlowArena arena;
    Rng rng(41, 9);
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<EdgeColor> colors = RandomFullColoring(graph, rng);
      ChainSelection legacy = ChainMinCutSelection(graph, plan, colors);
      std::vector<EdgeId> cached;
      ChainMinCutSelection(graph, cache, colors, &arena, &cached);
      // The cached path emits blue-chain edges then cut edges — the exact
      // AllEdges() order of the oracle.
      ASSERT_EQ(cached, legacy.AllEdges()) << "trial=" << trial;
    }
  }
}

// --- Dinic reset-not-rebuild --------------------------------------------

TEST(MaxFlowTest, ResetReusesBuffersWithIdenticalResults) {
  // Two different small networks through one reused instance vs fresh ones.
  auto build = [](MaxFlow& flow, int variant) {
    const int s = flow.AddNode();
    const int t = flow.AddNode();
    const int a = flow.AddNode();
    const int b = flow.AddNode();
    flow.AddArc(s, a, 3);
    flow.AddArc(s, b, variant == 0 ? 2 : 5);
    flow.AddArc(a, b, 1);
    flow.AddArc(a, t, 2);
    flow.AddArc(b, t, 4);
    return std::make_pair(s, t);
  };
  MaxFlow reused(0);
  for (int variant : {0, 1, 0, 1}) {
    reused.Reset(0);
    auto [s, t] = build(reused, variant);
    MaxFlow fresh(0);
    auto [fs, ft] = build(fresh, variant);
    EXPECT_EQ(reused.Compute(s, t), fresh.Compute(fs, ft));
    EXPECT_EQ(reused.SourceSide(s), fresh.SourceSide(fs));
  }
}

// --- Sampler: legacy vs flat, serial vs parallel ------------------------

TEST(SamplerIdentityTest, LegacyVsFlatAcrossShapesSeedsThreads) {
  for (Shape shape : kAllShapes) {
    SCOPED_TRACE(ShapeName(shape));
    for (uint64_t seed : {1u, 7u}) {
      QueryGraph graph = MakeShapeGraph(shape, seed, 6);
      // Pre-color a few edges so samples mix known and unknown colors.
      if (graph.num_edges() >= 4) {
        graph.SetColor(0, EdgeColor::kBlue);
        graph.SetColor(graph.num_edges() / 2, EdgeColor::kRed);
      }
      std::vector<EdgeId> reference;
      for (int threads : {1, 8}) {
        SamplingOptions options;
        options.num_samples = 40;
        options.seed = seed * 1000 + 17;
        options.num_threads = threads;
        options.legacy_selection = true;
        std::vector<EdgeId> legacy = SampleMinCutOrder(graph, options);
        options.legacy_selection = false;
        std::vector<EdgeId> flat = SampleMinCutOrder(graph, options);
        ASSERT_EQ(flat, legacy) << "threads=" << threads << " seed=" << seed;
        // A caller-built cache changes nothing.
        StructureCache cache = StructureCache::Build(graph);
        ASSERT_EQ(SampleMinCutOrder(graph, options, &cache), legacy);
        if (threads == 1) {
          reference = legacy;
        } else {
          ASSERT_EQ(legacy, reference) << "thread-count variance";
        }
      }
    }
  }
}

// --- Session-level identity ---------------------------------------------

std::string ColorDump(const QueryGraph& graph) {
  std::string out;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    switch (graph.edge(e).color) {
      case EdgeColor::kBlue:
        out += 'B';
        break;
      case EdgeColor::kRed:
        out += 'R';
        break;
      default:
        out += '?';
        break;
    }
  }
  return out;
}

ResolvedQuery ResolveQuery(const GeneratedDataset& ds, const std::string& cql) {
  Statement stmt = ParseStatement(cql).value();
  return AnalyzeSelect(std::get<SelectStatement>(stmt), ds.catalog).value();
}

// Full-pipeline identity: a session whose sampler runs the legacy
// rebuild-per-sample selection ends in the same colors, answers, and round
// structure as one on the cached flat path — clean and hostile crowds, 1
// and 8 threads.
TEST(SamplerIdentityTest, SessionColorOutcomesLegacyVsFlat) {
  GeneratedDataset dataset = MakeMiniPaperExample();
  ResolvedQuery query = ResolveQuery(dataset, kMiniExampleQuery);
  EdgeTruthFn truth = MakeEdgeTruth(&dataset, &query);
  for (bool hostile : {false, true}) {
    SCOPED_TRACE(hostile ? "hostile" : "clean");
    for (int threads : {1, 8}) {
      ExecutorOptions options;
      options.cost_method = CostMethod::kSampling;
      options.sampling_samples = 30;
      options.platform.worker_quality_mean = 0.85;
      options.platform.redundancy = 3;
      options.platform.seed = 99;
      options.num_threads = threads;
      options.graph.num_threads = threads;
      if (hostile) {
        FaultProfile& fault = options.platform.fault;
        fault.abandon_prob = 0.25;
        fault.straggler_prob = 0.2;
        fault.straggler_delay_ticks = 6;
        fault.duplicate_prob = 0.1;
        fault.no_show_prob = 0.15;
        fault.task_deadline_ticks = 8;
      }

      options.sampling_legacy_selection = true;
      QuerySession legacy_session(&query, options, truth);
      ExecutionResult legacy = legacy_session.RunToCompletion().value();
      std::string legacy_colors = ColorDump(legacy_session.graph());

      options.sampling_legacy_selection = false;
      QuerySession flat_session(&query, options, truth);
      ExecutionResult flat = flat_session.RunToCompletion().value();

      EXPECT_EQ(ColorDump(flat_session.graph()), legacy_colors);
      EXPECT_EQ(flat.answers, legacy.answers);
      EXPECT_EQ(flat.stats.tasks_asked, legacy.stats.tasks_asked);
      EXPECT_EQ(flat.stats.rounds, legacy.stats.rounds);
      EXPECT_EQ(flat.stats.round_sizes, legacy.stats.round_sizes);
    }
  }
}

}  // namespace
}  // namespace cdb
