#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/candidates.h"
#include "graph/pruning.h"
#include "tests/test_util.h"

namespace cdb {
namespace {

TEST(PrunerTest, AllValidInitially) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  Pruner pruner(&graph);
  EXPECT_TRUE(pruner.group_graph_acyclic());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EXPECT_TRUE(pruner.EdgeValid(e)) << "edge " << e;
  }
  EXPECT_EQ(pruner.RemainingTasks().size(), static_cast<size_t>(graph.num_edges()));
}

TEST(PrunerTest, RedEdgeCascades) {
  // The paper's running example: asking (p1, c1) RED invalidates all eight
  // edges upstream of p1 (Section 4.1).
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  EdgeId p1c1 = kNoEdge;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (graph.edge(e).pred == 2) p1c1 = e;
  }
  ASSERT_NE(p1c1, kNoEdge);
  graph.SetColor(p1c1, EdgeColor::kRed);
  Pruner pruner(&graph);
  pruner.Recompute();
  // Every edge is now invalid: the chain cannot reach relation 3.
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EXPECT_FALSE(pruner.EdgeValid(e)) << "edge " << e;
  }
  EXPECT_TRUE(pruner.RemainingTasks().empty());
}

TEST(PrunerTest, BlueEdgesStayValidButAreNotTasks) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  graph.SetColor(0, EdgeColor::kBlue);
  Pruner pruner(&graph);
  pruner.Recompute();
  EXPECT_TRUE(pruner.EdgeValid(0));
  for (EdgeId e : pruner.RemainingTasks()) EXPECT_NE(e, 0);
}

TEST(PrunerTest, SimulateCutMatchesPaperAlphaBeta) {
  // Worked example of Section 5.1.2: for edge (p1, r1), cutting r1's single
  // R-P edge invalidates alpha = 2 edges; cutting p1's three R-P edges
  // invalidates beta = 6 edges.
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  Pruner pruner(&graph);
  VertexId r1 = graph.FindVertex(1, 1);
  VertexId p1 = graph.FindVertex(2, 1);
  ASSERT_NE(r1, kNoVertex);
  ASSERT_NE(p1, kNoVertex);

  std::vector<EdgeId> r1_cut = graph.IncidentEdges(r1, 1);
  ASSERT_EQ(r1_cut.size(), 1u);
  EXPECT_EQ(pruner.SimulateCutInvalidation(r1_cut), 2);

  std::vector<EdgeId> p1_cut = graph.IncidentEdges(p1, 1);
  ASSERT_EQ(p1_cut.size(), 3u);
  EXPECT_EQ(pruner.SimulateCutInvalidation(p1_cut), 6);
}

TEST(PrunerTest, SimulationRollsBack) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  Pruner pruner(&graph);
  VertexId p1 = graph.FindVertex(2, 1);
  std::vector<EdgeId> cut = graph.IncidentEdges(p1, 1);
  size_t before = pruner.RemainingTasks().size();
  // Run the simulation multiple times; results must be stable and state
  // restored each time.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(pruner.SimulateCutInvalidation(cut), 6);
    EXPECT_EQ(pruner.RemainingTasks().size(), before);
  }
}

TEST(PrunerTest, SimulateCutOfEverythingIsZeroExtra) {
  // Cutting an edge that disconnects nothing extra reports 0.
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}};
  std::vector<QueryGraph::SyntheticEdge> edges = {
      {0, 0, 0, 0.5}, {0, 0, 1, 0.5}, {0, 1, 0, 0.5}};
  QueryGraph graph = QueryGraph::MakeSynthetic(2, preds, edges);
  Pruner pruner(&graph);
  EXPECT_EQ(pruner.SimulateCutInvalidation({0}), 0);
}

TEST(PrunerTest, ParallelPredicatesRequireBothEdges) {
  // Two predicates between the same relations: a tuple pair lacking one of
  // the two edges can never be in a candidate, so its lone edge is invalid.
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}, {true, false, 0, 1}};
  std::vector<QueryGraph::SyntheticEdge> edges = {
      {0, 0, 0, 0.5},  // pair (0,0) has pred-0 edge...
      {1, 0, 0, 0.5},  // ...and pred-1 edge: complete.
      {0, 1, 1, 0.5},  // pair (1,1) has only the pred-0 edge: invalid.
  };
  QueryGraph graph = QueryGraph::MakeSynthetic(2, preds, edges);
  Pruner pruner(&graph);
  EXPECT_TRUE(pruner.EdgeValid(0));
  EXPECT_TRUE(pruner.EdgeValid(1));
  EXPECT_FALSE(pruner.EdgeValid(2));
}

// Property: on random acyclic (chain) graphs with random colorings, the
// pruner's arc-consistency validity agrees exactly with the brute-force
// Definition-3 check.
class PrunerExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrunerExactnessTest, MatchesExactValidityOnChains) {
  Rng rng(GetParam());
  // Random 3-relation chain with 4 rows per relation.
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}, {true, false, 1, 2}};
  std::vector<QueryGraph::SyntheticEdge> edges;
  for (int p = 0; p < 2; ++p) {
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        if (rng.Bernoulli(0.45)) {
          edges.push_back({p, a, b, rng.Uniform(0.3, 1.0)});
        }
      }
    }
  }
  if (edges.empty()) return;
  QueryGraph graph = QueryGraph::MakeSynthetic(3, preds, edges);
  // Random partial coloring.
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    double roll = rng.Uniform();
    if (roll < 0.25) {
      graph.SetColor(e, EdgeColor::kRed);
    } else if (roll < 0.5) {
      graph.SetColor(e, EdgeColor::kBlue);
    }
  }
  Pruner pruner(&graph);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EXPECT_EQ(pruner.EdgeValid(e), EdgeValidExact(graph, e)) << "edge " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomChains, PrunerExactnessTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace cdb
