#include <gtest/gtest.h>

#include <set>

#include "graph/structure.h"
#include "tests/test_util.h"

namespace cdb {
namespace {

QueryGraph MakeShape(std::vector<PredicateInfo> preds) {
  // One edge per predicate is enough to build the relation-level structures.
  std::vector<QueryGraph::SyntheticEdge> edges;
  for (size_t p = 0; p < preds.size(); ++p) {
    edges.push_back({static_cast<int>(p), 0, 0, 0.5});
  }
  int max_rel = 0;
  for (const PredicateInfo& info : preds) {
    max_rel = std::max({max_rel, info.left_rel, info.right_rel});
  }
  return QueryGraph::MakeSynthetic(max_rel + 1, std::move(preds), edges);
}

TEST(StructureTest, ClassifyChain) {
  QueryGraph two = MakeShape({{true, false, 0, 1}});
  EXPECT_EQ(Classify(BuildRelGraph(two)), JoinStructure::kChain);
  QueryGraph four =
      MakeShape({{true, false, 0, 1}, {true, false, 1, 2}, {true, false, 2, 3}});
  EXPECT_EQ(Classify(BuildRelGraph(four)), JoinStructure::kChain);
}

TEST(StructureTest, ClassifyStar) {
  QueryGraph star =
      MakeShape({{true, false, 0, 1}, {true, false, 0, 2}, {true, false, 0, 3}});
  RelGraph rel_graph = BuildRelGraph(star);
  EXPECT_EQ(Classify(rel_graph), JoinStructure::kStar);
  EXPECT_EQ(StarCenter(rel_graph), 0);
}

TEST(StructureTest, ClassifyTree) {
  // A "T" shape: 0-1-2 chain plus 1-3 and 3-4: max degree 3 at node 1 but
  // not a star (node 3 has degree 2).
  QueryGraph tree = MakeShape({{true, false, 0, 1},
                               {true, false, 1, 2},
                               {true, false, 1, 3},
                               {true, false, 3, 4}});
  EXPECT_EQ(Classify(BuildRelGraph(tree)), JoinStructure::kTree);
  EXPECT_EQ(StarCenter(BuildRelGraph(tree)), -1);
}

TEST(StructureTest, ClassifyCyclic) {
  QueryGraph cyclic =
      MakeShape({{true, false, 0, 1}, {true, false, 1, 2}, {true, false, 2, 0}});
  EXPECT_EQ(Classify(BuildRelGraph(cyclic)), JoinStructure::kCyclic);
}

TEST(StructureTest, ParallelPredicatesCollapseToOneGroup) {
  QueryGraph graph = MakeShape({{true, false, 0, 1}, {true, false, 0, 1}});
  RelGraph rel_graph = BuildRelGraph(graph);
  ASSERT_EQ(rel_graph.groups.size(), 1u);
  EXPECT_EQ(rel_graph.groups[0].preds.size(), 2u);
  EXPECT_EQ(Classify(rel_graph), JoinStructure::kChain);
}

void CheckChainPlan(const QueryGraph& graph, const ChainPlan& plan) {
  // Occurrences and connecting groups are consistent, every relation
  // appears, and every group is used at least once.
  ASSERT_FALSE(plan.occ_rel.empty());
  ASSERT_EQ(plan.occ_group.size(), plan.occ_rel.size() - 1);
  RelGraph rel_graph = BuildRelGraph(graph);
  std::set<int> seen_rels;
  std::set<int> seen_groups;
  for (int rel : plan.occ_rel) seen_rels.insert(rel);
  for (size_t i = 0; i + 1 < plan.occ_rel.size(); ++i) {
    const RelGraph::Group& group = rel_graph.groups[static_cast<size_t>(plan.occ_group[i])];
    seen_groups.insert(plan.occ_group[i]);
    std::set<int> endpoints = {plan.occ_rel[i], plan.occ_rel[i + 1]};
    EXPECT_EQ(endpoints, (std::set<int>{group.rel_a, group.rel_b}));
  }
  EXPECT_EQ(seen_rels.size(), static_cast<size_t>(graph.num_relations()));
  EXPECT_EQ(seen_groups.size(), rel_graph.groups.size());
}

TEST(StructureTest, ChainPlanOfChainIsMinimal) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  ChainPlan plan = BuildChainPlan(graph);
  CheckChainPlan(graph, plan);
  EXPECT_EQ(plan.occ_rel.size(), 4u);  // No duplicate occurrences needed.
}

TEST(StructureTest, ChainPlanOfStarDuplicatesCenter) {
  QueryGraph star =
      MakeShape({{true, false, 0, 1}, {true, false, 0, 2}, {true, false, 0, 3}});
  ChainPlan plan = BuildChainPlan(star);
  CheckChainPlan(star, plan);
  // A 3-leaf star needs the center at least twice.
  int center_occurrences = 0;
  for (int rel : plan.occ_rel) center_occurrences += rel == 0 ? 1 : 0;
  EXPECT_GE(center_occurrences, 2);
}

TEST(StructureTest, ChainPlanOfTree) {
  QueryGraph tree = MakeShape({{true, false, 0, 1},
                               {true, false, 1, 2},
                               {true, false, 1, 3},
                               {true, false, 3, 4}});
  ChainPlan plan = BuildChainPlan(tree);
  CheckChainPlan(tree, plan);
}

TEST(StructureTest, ChainPlanOfCycleCoversAllGroups) {
  QueryGraph cyclic =
      MakeShape({{true, false, 0, 1}, {true, false, 1, 2}, {true, false, 2, 0}});
  ChainPlan plan = BuildChainPlan(cyclic);
  CheckChainPlan(cyclic, plan);
}

TEST(StructureTest, Names) {
  EXPECT_STREQ(JoinStructureName(JoinStructure::kChain), "chain");
  EXPECT_STREQ(JoinStructureName(JoinStructure::kStar), "star");
  EXPECT_STREQ(JoinStructureName(JoinStructure::kTree), "tree");
  EXPECT_STREQ(JoinStructureName(JoinStructure::kCyclic), "cyclic");
}

}  // namespace
}  // namespace cdb
