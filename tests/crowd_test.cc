#include <gtest/gtest.h>

#include <map>
#include <set>

#include "crowd/platform.h"

namespace cdb {
namespace {

Task YesNoTask(TaskId id) {
  Task task;
  task.id = id;
  task.type = TaskType::kSingleChoice;
  task.question = "match?";
  task.choices = {"yes", "no"};
  task.payload = id;
  return task;
}

TruthProvider AlwaysYes() {
  return [](const Task&) {
    TaskTruth truth;
    truth.correct_choice = 0;
    return truth;
  };
}

TEST(WorkerTest, PerfectWorkerAlwaysCorrect) {
  Rng rng(1);
  SimulatedWorker worker(0, 1.0);
  Task task = YesNoTask(0);
  TaskTruth truth;
  truth.correct_choice = 1;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(worker.AnswerTask(task, truth, rng).choice, 1);
  }
}

TEST(WorkerTest, AccuracyMatchesFrequency) {
  Rng rng(2);
  SimulatedWorker worker(0, 0.7);
  Task task = YesNoTask(0);
  TaskTruth truth;
  truth.correct_choice = 0;
  int correct = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    correct += worker.AnswerTask(task, truth, rng).choice == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(correct) / n, 0.7, 0.02);
}

TEST(WorkerTest, WrongAnswersAreUniformOverWrongChoices) {
  Rng rng(3);
  SimulatedWorker worker(0, 0.0);  // Clamped internally? No: direct 0.
  Task task = YesNoTask(0);
  task.choices = {"a", "b", "c", "d"};
  TaskTruth truth;
  truth.correct_choice = 2;
  std::map<int, int> counts;
  for (int i = 0; i < 9000; ++i) {
    ++counts[worker.AnswerTask(task, truth, rng).choice];
  }
  EXPECT_EQ(counts.count(2), 0u);  // Never correct.
  for (int c : {0, 1, 3}) EXPECT_NEAR(counts[c], 3000, 300);
}

TEST(WorkerTest, MultiChoicePerChoiceAccuracy) {
  Rng rng(4);
  SimulatedWorker worker(0, 1.0);
  Task task;
  task.id = 1;
  task.type = TaskType::kMultiChoice;
  task.choices = {"a", "b", "c"};
  TaskTruth truth;
  truth.correct_choice_set = {0, 2};
  Answer answer = worker.AnswerTask(task, truth, rng);
  EXPECT_EQ(answer.choice_set, (std::vector<int>{0, 2}));
}

TEST(WorkerTest, FillInBlankUsesWrongPool) {
  Rng rng(5);
  SimulatedWorker good(0, 1.0);
  SimulatedWorker bad(1, 0.0);
  Task task;
  task.id = 2;
  task.type = TaskType::kFillInBlank;
  TaskTruth truth;
  truth.correct_text = "Illinois";
  truth.wrong_text_pool = {"Indiana", "Iowa"};
  EXPECT_EQ(good.AnswerTask(task, truth, rng).text, "Illinois");
  std::string wrong = bad.AnswerTask(task, truth, rng).text;
  EXPECT_TRUE(wrong == "Indiana" || wrong == "Iowa");
}

TEST(WorkerPoolTest, QualitiesNearMean) {
  Rng rng(6);
  std::vector<SimulatedWorker> pool = MakeWorkerPool(500, 0.8, 0.1, rng);
  ASSERT_EQ(pool.size(), 500u);
  double sum = 0.0;
  for (const SimulatedWorker& w : pool) {
    EXPECT_GE(w.accuracy(), 0.05);
    EXPECT_LE(w.accuracy(), 0.99);
    sum += w.accuracy();
  }
  EXPECT_NEAR(sum / 500.0, 0.8, 0.02);
}

TEST(PlatformTest, EveryTaskGetsRedundancyAnswers) {
  PlatformOptions options;
  options.redundancy = 5;
  options.num_workers = 20;
  options.seed = 9;
  CrowdPlatform platform(options, AlwaysYes());
  std::vector<Task> tasks;
  for (int i = 0; i < 17; ++i) tasks.push_back(YesNoTask(i));
  std::vector<Answer> answers = platform.ExecuteRound(tasks).value();
  EXPECT_EQ(answers.size(), 17u * 5u);
  std::map<TaskId, std::set<int>> workers_per_task;
  for (const Answer& a : answers) {
    EXPECT_TRUE(workers_per_task[a.task].insert(a.worker).second)
        << "worker answered the same task twice";
  }
  for (auto& [task, workers] : workers_per_task) EXPECT_EQ(workers.size(), 5u);
}

TEST(PlatformTest, RedundancyCappedByWorkerCount) {
  PlatformOptions options;
  options.redundancy = 10;
  options.num_workers = 4;
  CrowdPlatform platform(options, AlwaysYes());
  std::vector<Answer> answers = platform.ExecuteRound({YesNoTask(0)}).value();
  EXPECT_EQ(answers.size(), 4u);
}

TEST(PlatformTest, StatsAccumulate) {
  PlatformOptions options;
  options.redundancy = 3;
  options.tasks_per_hit = 10;
  options.price_per_hit = 0.1;
  CrowdPlatform platform(options, AlwaysYes());
  std::vector<Task> tasks;
  for (int i = 0; i < 25; ++i) tasks.push_back(YesNoTask(i));
  ASSERT_TRUE(platform.ExecuteRound(tasks).ok());
  EXPECT_EQ(platform.stats().tasks_published, 25);
  EXPECT_EQ(platform.stats().hits_published, 3);  // ceil(25/10).
  EXPECT_EQ(platform.stats().micro_dollars_spent, 300000);  // 3 HITs * $0.1.
  EXPECT_EQ(platform.stats().answers_collected, 75);
  ASSERT_TRUE(platform.ExecuteRound({YesNoTask(100)}).ok());
  EXPECT_EQ(platform.stats().tasks_published, 26);
  EXPECT_EQ(platform.stats().hits_published, 4);
}

TEST(PlatformTest, PolicyControlsAssignment) {
  PlatformOptions options;
  options.redundancy = 2;
  options.num_workers = 10;
  options.requester_controls_assignment = true;
  CrowdPlatform platform(options, AlwaysYes());
  // Policy that always picks the last available task: everything still
  // completes, and the policy was actually consulted.
  int policy_calls = 0;
  AssignmentPolicy policy = [&](const SimulatedWorker&,
                                const std::vector<TaskId>& available,
                                int count) {
    ++policy_calls;
    std::vector<size_t> picks;
    for (int i = 0; i < count && i < static_cast<int>(available.size()); ++i) {
      picks.push_back(available.size() - 1 - static_cast<size_t>(i));
    }
    return picks;
  };
  std::vector<Task> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back(YesNoTask(i));
  std::vector<Answer> answers = platform.ExecuteRound(tasks, &policy).value();
  EXPECT_EQ(answers.size(), 16u);
  EXPECT_GT(policy_calls, 0);
}

TEST(PlatformTest, ObserverSeesEveryAnswer) {
  PlatformOptions options;
  options.redundancy = 3;
  CrowdPlatform platform(options, AlwaysYes());
  int observed = 0;
  AnswerObserver observer = [&](const Answer&) { ++observed; };
  ASSERT_TRUE(
      platform.ExecuteRound({YesNoTask(0), YesNoTask(1)}, nullptr, &observer)
          .ok());
  EXPECT_EQ(observed, 6);
}

TEST(PlatformTest, EmptyRoundIsNoop) {
  CrowdPlatform platform(PlatformOptions{}, AlwaysYes());
  EXPECT_TRUE(platform.ExecuteRound({}).value().empty());
  EXPECT_EQ(platform.stats().tasks_published, 0);
}

// Regression: a policy that keeps picking tasks the worker already answered
// (or none at all) used to spin the arrival loop forever because a non-empty
// pick reset the idle counter even when no answer was recorded. The platform
// must detect the livelock and fail with a typed status instead.
TEST(PlatformTest, ExhaustedCrowdReturnsTypedStatus) {
  PlatformOptions options;
  options.redundancy = 2;
  options.num_workers = 6;
  CrowdPlatform platform(options, AlwaysYes());
  AssignmentPolicy stubborn = [](const SimulatedWorker&,
                                 const std::vector<TaskId>&, int) {
    // Declines every offer: no arrival ever records an answer.
    return std::vector<size_t>{};
  };
  Result<std::vector<Answer>> result =
      platform.ExecuteRound({YesNoTask(0)}, &stubborn);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("crowd exhausted"),
            std::string::npos);
}

TEST(PlatformTest, UnsatisfiableFaultProfileIsInvalidArgument) {
  PlatformOptions options;
  options.fault.abandon_prob = 0.5;  // Needs a deadline to ever free slots.
  options.fault.task_deadline_ticks = 0;
  CrowdPlatform platform(options, AlwaysYes());
  Result<std::vector<Answer>> result = platform.ExecuteRound({YesNoTask(0)});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlatformTest, FaultFreeProfileMatchesCleanPath) {
  // fault.Active() == false must route through the legacy loop: identical
  // answers and stats to a platform that never heard of FaultProfile.
  PlatformOptions clean;
  clean.redundancy = 3;
  clean.seed = 11;
  PlatformOptions zeroed = clean;
  zeroed.fault = FaultProfile{};  // All knobs at defaults.
  CrowdPlatform a(clean, AlwaysYes());
  CrowdPlatform b(zeroed, AlwaysYes());
  std::vector<Task> tasks;
  for (int i = 0; i < 9; ++i) tasks.push_back(YesNoTask(i));
  std::vector<Answer> answers_a = a.ExecuteRound(tasks).value();
  std::vector<Answer> answers_b = b.ExecuteRound(tasks).value();
  ASSERT_EQ(answers_a.size(), answers_b.size());
  for (size_t i = 0; i < answers_a.size(); ++i) {
    EXPECT_EQ(answers_a[i].task, answers_b[i].task);
    EXPECT_EQ(answers_a[i].worker, answers_b[i].worker);
    EXPECT_EQ(answers_a[i].choice, answers_b[i].choice);
  }
  EXPECT_EQ(PlatformStatsDump(a.stats()), PlatformStatsDump(b.stats()));
}

TEST(PlatformTest, AbandonedLeasesAreRepostedToRedundancy) {
  PlatformOptions options;
  options.redundancy = 3;
  options.num_workers = 30;
  options.seed = 21;
  options.fault.abandon_prob = 0.3;
  options.fault.task_deadline_ticks = 6;
  CrowdPlatform platform(options, AlwaysYes());
  std::vector<Task> tasks;
  for (int i = 0; i < 12; ++i) tasks.push_back(YesNoTask(i));
  std::vector<Answer> answers = platform.ExecuteRound(tasks).value();
  std::map<TaskId, std::set<int>> workers_per_task;
  for (const Answer& a : answers) {
    workers_per_task[a.task].insert(a.worker);
  }
  for (const Task& task : tasks) {
    if (platform.delivered_per_task().count(task.id) == 0) continue;
    EXPECT_GE(workers_per_task[task.id].size(), 3u) << "task " << task.id;
  }
  const PlatformStats& stats = platform.stats();
  EXPECT_GT(stats.abandons, 0);
  EXPECT_GT(stats.expiries, 0);
  EXPECT_EQ(stats.leases_granted, (stats.answers_collected - stats.duplicates) +
                                      stats.abandons + stats.late_answers);
}

TEST(PlatformTest, StragglersDeliverLateAnswers) {
  PlatformOptions options;
  options.redundancy = 3;
  options.num_workers = 30;
  options.seed = 5;
  options.fault.straggler_prob = 0.6;
  options.fault.straggler_delay_ticks = 8;
  options.fault.task_deadline_ticks = 3;  // Short lease: stragglers miss it.
  CrowdPlatform platform(options, AlwaysYes());
  std::vector<Task> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back(YesNoTask(i));
  ASSERT_TRUE(platform.ExecuteRound(tasks).ok());
  std::vector<Answer> late = platform.TakeLateAnswers();
  EXPECT_GT(platform.stats().late_answers, 0);
  EXPECT_EQ(static_cast<int64_t>(late.size()), platform.stats().late_answers);
  for (const Answer& a : late) EXPECT_TRUE(a.late);
  // Draining is destructive.
  EXPECT_TRUE(platform.TakeLateAnswers().empty());
}

TEST(PlatformTest, DuplicatesAreCountedAndDelivered) {
  PlatformOptions options;
  options.redundancy = 2;
  options.num_workers = 20;
  options.seed = 7;
  options.fault.duplicate_prob = 1.0;  // Every on-time answer doubled.
  options.fault.task_deadline_ticks = 8;
  CrowdPlatform platform(options, AlwaysYes());
  std::vector<Answer> answers =
      platform.ExecuteRound({YesNoTask(0), YesNoTask(1)}).value();
  EXPECT_GT(platform.stats().duplicates, 0);
  EXPECT_EQ(static_cast<int64_t>(answers.size()),
            platform.stats().answers_collected);
  // De-duplicating by (task, worker) recovers exactly redundancy answers.
  std::map<TaskId, std::set<int>> unique;
  for (const Answer& a : answers) unique[a.task].insert(a.worker);
  for (auto& [task, workers] : unique) EXPECT_EQ(workers.size(), 2u);
}

TEST(PlatformTest, HopelessTasksAreDeadLettered) {
  PlatformOptions options;
  options.redundancy = 3;
  options.num_workers = 8;
  options.seed = 13;
  options.fault.abandon_prob = 1.0;  // Nobody ever submits.
  options.fault.task_deadline_ticks = 2;
  options.fault.max_task_expiries = 2;
  CrowdPlatform platform(options, AlwaysYes());
  std::vector<Answer> answers =
      platform.ExecuteRound({YesNoTask(0), YesNoTask(1)}).value();
  EXPECT_TRUE(answers.empty());
  std::vector<TaskId> dead = platform.TakeDeadLetters();
  EXPECT_EQ(dead.size(), 2u);
  EXPECT_EQ(platform.stats().dead_lettered, 2);
  EXPECT_TRUE(platform.TakeDeadLetters().empty());
}

TEST(PlatformTest, RedundancyOverrideControlsAnswerCount) {
  PlatformOptions options;
  options.redundancy = 5;
  options.num_workers = 20;
  CrowdPlatform platform(options, AlwaysYes());
  Task task = YesNoTask(0);
  task.redundancy_override = 2;
  std::vector<Answer> answers = platform.ExecuteRound({task}).value();
  EXPECT_EQ(answers.size(), 2u);
}

TEST(PlatformTest, AdvanceTicksMovesVirtualClock) {
  CrowdPlatform platform(PlatformOptions{}, AlwaysYes());
  EXPECT_EQ(platform.stats().ticks, 0);
  platform.AdvanceTicks(17);
  EXPECT_EQ(platform.stats().ticks, 17);
}

TEST(MultiMarketTest, PartitionsAndMerges) {
  PlatformOptions a;
  a.market_name = "SimAMT";
  a.redundancy = 2;
  a.seed = 1;
  PlatformOptions b;
  b.market_name = "SimCrowdFlower";
  b.requester_controls_assignment = false;
  b.redundancy = 2;
  b.seed = 2;
  MultiMarket market({a, b}, AlwaysYes());
  std::vector<Task> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back(YesNoTask(i));
  std::vector<Answer> answers = market.ExecuteRound(tasks).value();
  EXPECT_EQ(answers.size(), 20u);
  PlatformStats stats = market.CombinedStats();
  EXPECT_EQ(stats.tasks_published, 10);
  EXPECT_EQ(stats.answers_collected, 20);
  // Worker ids from the second market carry the offset.
  bool saw_offset = false;
  for (const Answer& answer : answers) {
    if (answer.worker >= MultiMarket::kWorkerIdStride) saw_offset = true;
  }
  EXPECT_TRUE(saw_offset);
}

TEST(TaskTest, MakeEdgeTaskFormatsQuestion) {
  Task task = MakeEdgeTask(3, 7, "MIT", "Massachusetts Institute of Technology");
  EXPECT_EQ(task.id, 3);
  EXPECT_EQ(task.payload, 7);
  EXPECT_EQ(task.type, TaskType::kSingleChoice);
  ASSERT_EQ(task.choices.size(), 2u);
  EXPECT_NE(task.question.find("MIT"), std::string::npos);
}

TEST(TaskTest, TypeNames) {
  EXPECT_STREQ(TaskTypeName(TaskType::kSingleChoice), "single-choice");
  EXPECT_STREQ(TaskTypeName(TaskType::kCollection), "collection");
}

}  // namespace
}  // namespace cdb
