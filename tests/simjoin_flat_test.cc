// Bit-identity and admissibility proofs for the flat sim-join kernels
// (`ctest -L simjoin`):
//
//   * legacy vs flat produce byte-identical SimPair vectors across every
//     similarity function x threshold x thread count,
//   * the signature pre-filter never changes the output (it may only skip
//     work), and its bounds never reject a pair whose exact similarity
//     reaches the threshold,
//   * CSR / arena building blocks preserve emission order,
//   * the funnel counters obey candidates == signature_rejects + verified.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "datagen/perturb.h"
#include "datagen/string_corpus.h"
#include "similarity/csr_index.h"
#include "similarity/signature.h"
#include "similarity/sim_join.h"
#include "similarity/tokenizer.h"

namespace cdb {
namespace {

// Byte-level equality: indexes must match exactly and the sim doubles must
// match bit for bit (== would also accept -0.0 vs 0.0).
void ExpectBitIdentical(const std::vector<SimPair>& a,
                        const std::vector<SimPair>& b,
                        const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].left, b[k].left) << context << " pair " << k;
    EXPECT_EQ(a[k].right, b[k].right) << context << " pair " << k;
    EXPECT_EQ(std::memcmp(&a[k].sim, &b[k].sim, sizeof(double)), 0)
        << context << " pair " << k << ": " << a[k].sim << " vs " << b[k].sim;
  }
}

StringCorpus SmallCorpus() {
  StringCorpusOptions options;
  options.num_left = 220;
  options.num_right = 220;
  options.match_fraction = 0.35;
  options.vocabulary = 120;  // Dense enough that prefixes actually collide.
  options.seed = 4242;
  return GenerateStringCorpus(options);
}

struct IdentityCase {
  SimilarityFunction fn;
  double threshold;
  int threads;
};

class SimJoinIdentityTest : public ::testing::TestWithParam<IdentityCase> {};

TEST_P(SimJoinIdentityTest, FlatMatchesLegacyBitForBit) {
  const IdentityCase test_case = GetParam();
  StringCorpus corpus = SmallCorpus();

  SimJoinOptions legacy;
  legacy.kernel = SimJoinKernel::kLegacy;
  legacy.num_threads = 1;
  std::vector<SimPair> oracle = SimilarityJoin(
      corpus.left, corpus.right, test_case.fn, test_case.threshold, legacy);

  SimJoinOptions flat;
  flat.kernel = SimJoinKernel::kFlat;
  flat.num_threads = test_case.threads;
  std::vector<SimPair> got = SimilarityJoin(
      corpus.left, corpus.right, test_case.fn, test_case.threshold, flat);

  std::string context = std::string(SimilarityFunctionName(test_case.fn)) +
                        " t=" + std::to_string(test_case.threshold) +
                        " threads=" + std::to_string(test_case.threads);
  ExpectBitIdentical(oracle, got, context);

  // The signature filter must be output-invisible.
  flat.signature_filter = false;
  std::vector<SimPair> unfiltered = SimilarityJoin(
      corpus.left, corpus.right, test_case.fn, test_case.threshold, flat);
  ExpectBitIdentical(got, unfiltered, context + " (filter off)");
}

INSTANTIATE_TEST_SUITE_P(
    FunctionsThresholdsThreads, SimJoinIdentityTest,
    ::testing::Values(
        IdentityCase{SimilarityFunction::kWordJaccard, 0.5, 1},
        IdentityCase{SimilarityFunction::kWordJaccard, 0.5, 8},
        IdentityCase{SimilarityFunction::kWordJaccard, 0.8, 1},
        IdentityCase{SimilarityFunction::kWordJaccard, 0.8, 8},
        IdentityCase{SimilarityFunction::kWordJaccard, 0.95, 1},
        IdentityCase{SimilarityFunction::kWordJaccard, 0.95, 8},
        IdentityCase{SimilarityFunction::kQGramJaccard, 0.5, 1},
        IdentityCase{SimilarityFunction::kQGramJaccard, 0.5, 8},
        IdentityCase{SimilarityFunction::kQGramJaccard, 0.8, 1},
        IdentityCase{SimilarityFunction::kQGramJaccard, 0.8, 8},
        IdentityCase{SimilarityFunction::kQGramJaccard, 0.95, 1},
        IdentityCase{SimilarityFunction::kQGramJaccard, 0.95, 8},
        IdentityCase{SimilarityFunction::kQGramCosine, 0.5, 1},
        IdentityCase{SimilarityFunction::kQGramCosine, 0.5, 8},
        IdentityCase{SimilarityFunction::kQGramCosine, 0.8, 1},
        IdentityCase{SimilarityFunction::kQGramCosine, 0.8, 8},
        IdentityCase{SimilarityFunction::kQGramCosine, 0.95, 1},
        IdentityCase{SimilarityFunction::kQGramCosine, 0.95, 8},
        IdentityCase{SimilarityFunction::kEditDistance, 0.5, 1},
        IdentityCase{SimilarityFunction::kEditDistance, 0.5, 8},
        IdentityCase{SimilarityFunction::kEditDistance, 0.8, 1},
        IdentityCase{SimilarityFunction::kEditDistance, 0.8, 8},
        IdentityCase{SimilarityFunction::kEditDistance, 0.95, 1},
        IdentityCase{SimilarityFunction::kEditDistance, 0.95, 8}));

// --- Signature admissibility ------------------------------------------------

std::vector<int32_t> RandomIdSet(Rng& rng, int max_size, int universe) {
  std::set<int32_t> ids;
  int n = static_cast<int>(rng.UniformInt(0, max_size));
  for (int k = 0; k < n; ++k) {
    ids.insert(static_cast<int32_t>(rng.UniformInt(0, universe - 1)));
  }
  return {ids.begin(), ids.end()};
}

size_t SymmetricDifference(const std::vector<int32_t>& a,
                           const std::vector<int32_t>& b) {
  size_t inter = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  return a.size() + b.size() - 2 * inter;
}

TEST(SignatureTest, HammingLowerBoundsSymmetricDifference) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<int32_t> a = RandomIdSet(rng, 30, 200);
    std::vector<int32_t> b = RandomIdSet(rng, 30, 200);
    TokenSignature sa = SignatureOfIds(a.data(), a.size());
    TokenSignature sb = SignatureOfIds(b.data(), b.size());
    EXPECT_LE(static_cast<size_t>(SignatureHamming(sa, sb)),
              SymmetricDifference(a, b));
  }
}

TEST(SignatureTest, JaccardFilterNeverDropsTruePositive) {
  Rng rng(123);
  const double thresholds[] = {0.3, 0.5, 0.8, 0.95};
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<int32_t> a = RandomIdSet(rng, 25, 120);
    std::vector<int32_t> b = RandomIdSet(rng, 25, 120);
    size_t delta = SymmetricDifference(a, b);
    size_t inter = (a.size() + b.size() - delta) / 2;
    size_t uni = a.size() + b.size() - inter;
    double jaccard =
        uni == 0 ? 1.0
                 : static_cast<double>(inter) / static_cast<double>(uni);
    TokenSignature sa = SignatureOfIds(a.data(), a.size());
    TokenSignature sb = SignatureOfIds(b.data(), b.size());
    for (double t : thresholds) {
      if (jaccard >= t) {
        EXPECT_FALSE(SignatureRejectsJaccard(sa, sb, a.size(), b.size(), t))
            << "jaccard=" << jaccard << " t=" << t;
      }
    }
  }
}

TEST(SignatureTest, CosineFilterNeverDropsTruePositive) {
  Rng rng(321);
  const double thresholds[] = {0.3, 0.5, 0.8, 0.95};
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<int32_t> a = RandomIdSet(rng, 25, 120);
    std::vector<int32_t> b = RandomIdSet(rng, 25, 120);
    if (a.empty() || b.empty()) continue;
    size_t delta = SymmetricDifference(a, b);
    size_t inter = (a.size() + b.size() - delta) / 2;
    double cosine = static_cast<double>(inter) /
                    std::sqrt(static_cast<double>(a.size()) *
                              static_cast<double>(b.size()));
    TokenSignature sa = SignatureOfIds(a.data(), a.size());
    TokenSignature sb = SignatureOfIds(b.data(), b.size());
    for (double t : thresholds) {
      if (cosine >= t) {
        EXPECT_FALSE(SignatureRejectsCosine(sa, sb, a.size(), b.size(), t))
            << "cosine=" << cosine << " t=" << t;
      }
    }
  }
}

std::string RandomWordString(Rng& rng) {
  static const char* const kWords[] = {"crowd", "query", "join", "data",
                                       "graph", "tuple", "match", "cost"};
  std::string s;
  int n = static_cast<int>(rng.UniformInt(1, 3));
  for (int w = 0; w < n; ++w) {
    if (w > 0) s += ' ';
    s += kWords[rng.UniformInt(0, 7)];
  }
  return s;
}

TEST(SignatureTest, EditDistanceFilterNeverDropsTruePositive) {
  Rng rng(555);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string a = RandomWordString(rng);
    std::string b = a;
    int edits = static_cast<int>(rng.UniformInt(0, 3));
    for (int e = 0; e < edits; ++e) b = IntroduceTypo(b, rng);
    size_t dist = BoundedEditDistance(a, b, a.size() + b.size());
    TokenSignature sa = SignatureOfGrams(a);
    TokenSignature sb = SignatureOfGrams(b);
    // Any tau >= the true distance must not be rejected.
    for (size_t tau = dist; tau <= dist + 2; ++tau) {
      EXPECT_FALSE(SignatureRejectsEditDistance(sa, sb, tau))
          << "a=" << a << " b=" << b << " dist=" << dist << " tau=" << tau;
    }
  }
}

// --- CSR / arena building blocks -------------------------------------------

TEST(CsrIndexTest, PostingsPreserveEmissionOrder) {
  // Emission order per key is the order the sink saw the (key, value) pairs.
  CsrIndex index = CsrIndex::Build(3, [](const auto& sink) {
    sink(2, 10);
    sink(0, 11);
    sink(2, 12);
    sink(2, 13);
    sink(0, 14);
  });
  EXPECT_EQ(index.num_keys(), 3u);
  EXPECT_EQ(index.num_postings(), 5u);
  auto [p0, p0_end] = index.Postings(0);
  EXPECT_EQ(std::vector<int32_t>(p0, p0_end), (std::vector<int32_t>{11, 14}));
  auto [p1, p1_end] = index.Postings(1);
  EXPECT_EQ(p1, p1_end);
  auto [p2, p2_end] = index.Postings(2);
  EXPECT_EQ(std::vector<int32_t>(p2, p2_end),
            (std::vector<int32_t>{10, 12, 13}));
}

TEST(TokenArenaTest, SpansAreDisjointAndSized) {
  TokenArena arena(std::vector<int32_t>{2, 0, 3});
  EXPECT_EQ(arena.num_records(), 3u);
  EXPECT_EQ(arena.size(0), 2u);
  EXPECT_EQ(arena.size(1), 0u);
  EXPECT_EQ(arena.size(2), 3u);
  arena.MutableSpan(0)[0] = 7;
  arena.MutableSpan(0)[1] = 8;
  arena.MutableSpan(2)[0] = 1;
  arena.MutableSpan(2)[1] = 2;
  arena.MutableSpan(2)[2] = 3;
  EXPECT_EQ(std::vector<int32_t>(arena.begin(0), arena.end(0)),
            (std::vector<int32_t>{7, 8}));
  EXPECT_EQ(arena.begin(1), arena.end(1));
  EXPECT_EQ(std::vector<int32_t>(arena.begin(2), arena.end(2)),
            (std::vector<int32_t>{1, 2, 3}));
}

// --- Funnel accounting ------------------------------------------------------

TEST(SimJoinFunnelTest, CandidatesSplitIntoRejectsPlusVerified) {
  StringCorpus corpus = SmallCorpus();
  const SimilarityFunction fns[] = {
      SimilarityFunction::kWordJaccard, SimilarityFunction::kQGramJaccard,
      SimilarityFunction::kQGramCosine, SimilarityFunction::kEditDistance};
  for (SimilarityFunction fn : fns) {
    for (int threads : {1, 8}) {
      MetricsRegistry metrics;
      SimJoinOptions options;
      options.kernel = SimJoinKernel::kFlat;
      options.num_threads = threads;
      options.metrics = &metrics;
      std::vector<SimPair> pairs =
          SimilarityJoin(corpus.left, corpus.right, fn, 0.6, options);
      int64_t candidates = metrics.counter("simjoin.candidates").Value();
      int64_t rejects = metrics.counter("simjoin.signature_rejects").Value();
      int64_t verified = metrics.counter("simjoin.verified").Value();
      int64_t emitted = metrics.counter("simjoin.pairs").Value();
      EXPECT_EQ(candidates, rejects + verified)
          << SimilarityFunctionName(fn) << " threads=" << threads;
      EXPECT_EQ(emitted, static_cast<int64_t>(pairs.size()))
          << SimilarityFunctionName(fn) << " threads=" << threads;
      EXPECT_GT(candidates, 0) << SimilarityFunctionName(fn);
    }
  }
}

TEST(SimJoinFunnelTest, FunnelCountsAreThreadCountInvariant) {
  StringCorpus corpus = SmallCorpus();
  std::string serial_dump;
  {
    MetricsRegistry metrics;
    SimJoinOptions options;
    options.num_threads = 1;
    options.metrics = &metrics;
    (void)SimilarityJoin(corpus.left, corpus.right,
                         SimilarityFunction::kWordJaccard, 0.6, options);
    serial_dump = MetricsDump(metrics);
  }
  MetricsRegistry metrics;
  SimJoinOptions options;
  options.num_threads = 8;
  options.metrics = &metrics;
  (void)SimilarityJoin(corpus.left, corpus.right,
                       SimilarityFunction::kWordJaccard, 0.6, options);
  EXPECT_EQ(serial_dump, MetricsDump(metrics));
}

TEST(SimJoinFunnelTest, SignatureFilterOnlySkipsVerification) {
  StringCorpus corpus = SmallCorpus();
  MetricsRegistry with_filter;
  MetricsRegistry without_filter;
  SimJoinOptions options;
  options.num_threads = 1;
  options.metrics = &with_filter;
  std::vector<SimPair> filtered = SimilarityJoin(
      corpus.left, corpus.right, SimilarityFunction::kWordJaccard, 0.8,
      options);
  options.signature_filter = false;
  options.metrics = &without_filter;
  std::vector<SimPair> unfiltered = SimilarityJoin(
      corpus.left, corpus.right, SimilarityFunction::kWordJaccard, 0.8,
      options);
  ExpectBitIdentical(filtered, unfiltered, "filter on/off");
  // Same candidates either way; the filter moves work from verified to
  // rejected, never changes what is emitted.
  EXPECT_EQ(with_filter.counter("simjoin.candidates").Value(),
            without_filter.counter("simjoin.candidates").Value());
  EXPECT_EQ(without_filter.counter("simjoin.signature_rejects").Value(), 0);
  EXPECT_LE(with_filter.counter("simjoin.verified").Value(),
            without_filter.counter("simjoin.verified").Value());
  EXPECT_EQ(with_filter.counter("simjoin.pairs").Value(),
            without_filter.counter("simjoin.pairs").Value());
}

}  // namespace
}  // namespace cdb
