// Shared fixtures for the CDB test suite: hand-built graphs mirroring the
// paper's worked examples, and truth oracles for synthetic graphs.
#ifndef CDB_TESTS_TEST_UTIL_H_
#define CDB_TESTS_TEST_UTIL_H_

#include <set>
#include <utility>
#include <vector>

#include "exec/executor.h"
#include "graph/query_graph.h"

namespace cdb {
namespace testing_util {

// A chain query U(0) - R(1) - P(2) - C(3) with predicates
//   pred 0: U-R, pred 1: R-P, pred 2: P-C,
// reproducing the local neighborhood of the paper's Figure 4 around paper
// p1: edges (u1,r1) (u2,r1) (u1,r2) (u2,r2) (u3,r3), (r1,p1) w=.42,
// (r2,p1) w=.41, (r3,p1) w=.83, and (p1,c1) w=.9.
inline QueryGraph MakeFigure4Neighborhood() {
  std::vector<PredicateInfo> preds = {
      {true, false, 0, 1},  // U-R
      {true, false, 1, 2},  // R-P
      {true, false, 2, 3},  // P-C
  };
  std::vector<QueryGraph::SyntheticEdge> edges = {
      {0, /*u*/ 1, /*r*/ 1, 0.6},  {0, 2, 1, 0.6}, {0, 1, 2, 0.6},
      {0, 2, 2, 0.6},              {0, 3, 3, 0.6},
      {1, /*r*/ 1, /*p*/ 1, 0.42}, {1, 2, 1, 0.41}, {1, 3, 1, 0.83},
      {2, /*p*/ 1, /*c*/ 1, 0.9},
  };
  return QueryGraph::MakeSynthetic(4, preds, edges);
}

// The Figure-1 motivating example shape: a 3-table chain T1-T2-T3 where the
// cross-table pairs are dense but only a few edges are truly BLUE, so
// tuple-level selection can refute everything with a handful of RED asks
// while any table-level order asks many more.
//
// Layout: T1 has 3 rows, T2 has 3 rows, T3 has 3 rows; pred 0 joins T1-T2
// fully (9 edges), pred 1 joins T2-T3 with edges only from T2 row 0 to all
// of T3 (3 edges). Truth: pred-1 edges all RED => no answers; the optimal
// strategy asks the 3 pred-1 edges.
inline QueryGraph MakeFigure1Chain() {
  std::vector<PredicateInfo> preds = {
      {true, false, 0, 1},
      {true, false, 1, 2},
  };
  std::vector<QueryGraph::SyntheticEdge> edges;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) edges.push_back({0, a, b, 0.6});
  }
  for (int c = 0; c < 3; ++c) edges.push_back({1, 0, c, 0.4});
  return QueryGraph::MakeSynthetic(3, preds, edges);
}

// Truth oracle for synthetic graphs: edges listed in `blue` (as
// (pred, left_row, right_row) triples) are true matches, everything else is
// false.
inline EdgeTruthFn TruthFromSet(
    std::set<std::tuple<int, int64_t, int64_t>> blue) {
  return [blue = std::move(blue)](const QueryGraph& graph, EdgeId e) {
    const GraphEdge& edge = graph.edge(e);
    return blue.count({edge.pred, graph.vertex(edge.u).row,
                       graph.vertex(edge.v).row}) > 0;
  };
}

// Truth oracle that colors every edge by a fixed vector (index = EdgeId).
inline EdgeTruthFn TruthFromColors(std::vector<EdgeColor> colors) {
  return [colors = std::move(colors)](const QueryGraph&, EdgeId e) {
    return colors[static_cast<size_t>(e)] == EdgeColor::kBlue;
  };
}

}  // namespace testing_util
}  // namespace cdb

#endif  // CDB_TESTS_TEST_UTIL_H_
