#include <gtest/gtest.h>

#include "graph/candidates.h"
#include "tests/test_util.h"

namespace cdb {
namespace {

TEST(CandidatesTest, FindEdgeBetween) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  VertexId r1 = graph.FindVertex(1, 1);
  VertexId p1 = graph.FindVertex(2, 1);
  EdgeId e = FindEdgeBetween(graph, r1, p1, 1);
  ASSERT_NE(e, kNoEdge);
  EXPECT_DOUBLE_EQ(graph.edge(e).weight, 0.42);
  EXPECT_EQ(FindEdgeBetween(graph, r1, p1, 0), kNoEdge);
}

TEST(CandidatesTest, AnswersRequireAllBlue) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  EXPECT_TRUE(FindAnswers(graph).empty());  // Nothing colored yet.
  // Color a full chain blue: u1-r1-p1-c1.
  VertexId u1 = graph.FindVertex(0, 1);
  VertexId r1 = graph.FindVertex(1, 1);
  VertexId p1 = graph.FindVertex(2, 1);
  VertexId c1 = graph.FindVertex(3, 1);
  graph.SetColor(FindEdgeBetween(graph, u1, r1, 0), EdgeColor::kBlue);
  graph.SetColor(FindEdgeBetween(graph, r1, p1, 1), EdgeColor::kBlue);
  graph.SetColor(FindEdgeBetween(graph, p1, c1, 2), EdgeColor::kBlue);
  std::vector<Assignment> answers = FindAnswers(graph);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], u1);
  EXPECT_EQ(answers[0][1], r1);
  EXPECT_EQ(answers[0][2], p1);
  EXPECT_EQ(answers[0][3], c1);
}

TEST(CandidatesTest, AssignmentEdges) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  Assignment assignment = {graph.FindVertex(0, 1), graph.FindVertex(1, 1),
                           graph.FindVertex(2, 1), graph.FindVertex(3, 1)};
  std::vector<EdgeId> edges = AssignmentEdges(graph, assignment);
  ASSERT_EQ(edges.size(), 3u);
  for (size_t p = 0; p < edges.size(); ++p) {
    EXPECT_EQ(graph.edge(edges[p]).pred, static_cast<int>(p));
  }
}

TEST(CandidatesTest, ExistsCandidateRespectsFixedVertices) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  auto non_red = [](const GraphEdge& e) { return e.color != EdgeColor::kRed; };
  std::vector<VertexId> fixed(4, kNoVertex);
  EXPECT_TRUE(ExistsCandidate(graph, fixed, non_red));
  // u3 only connects to r3: fixing u3 and r1 must fail.
  fixed[0] = graph.FindVertex(0, 3);
  fixed[1] = graph.FindVertex(1, 1);
  EXPECT_FALSE(ExistsCandidate(graph, fixed, non_red));
  fixed[1] = graph.FindVertex(1, 3);
  EXPECT_TRUE(ExistsCandidate(graph, fixed, non_red));
}

TEST(CandidatesTest, EdgeValidExactAfterRed) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  EdgeId p1c1 = kNoEdge;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (graph.edge(e).pred == 2) p1c1 = e;
  }
  EXPECT_TRUE(EdgeValidExact(graph, 0));
  graph.SetColor(p1c1, EdgeColor::kRed);
  EXPECT_FALSE(EdgeValidExact(graph, p1c1));
  EXPECT_FALSE(EdgeValidExact(graph, 0));
}

TEST(CandidatesTest, ConflictSameTableRule) {
  QueryGraph graph = testing_util::MakeFigure1Chain();
  // Edges (t1:0, t2:0) and (t1:1, t2:1) involve different tuples of both
  // relations -> never in one candidate -> non-conflict.
  EdgeId e00 = kNoEdge;
  EdgeId e11 = kNoEdge;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    if (edge.pred != 0) continue;
    int64_t a = graph.vertex(edge.u).row;
    int64_t b = graph.vertex(edge.v).row;
    if (a == 0 && b == 0) e00 = e;
    if (a == 1 && b == 1) e11 = e;
  }
  ASSERT_NE(e00, kNoEdge);
  ASSERT_NE(e11, kNoEdge);
  EXPECT_FALSE(EdgesConflict(graph, e00, e11));
  EXPECT_TRUE(EdgesConflict(graph, e00, e00));
}

TEST(CandidatesTest, ConflictAcrossPredicates) {
  QueryGraph graph = testing_util::MakeFigure1Chain();
  // (t1:0, t2:0) for pred 0 and (t2:0, t3:0) for pred 1 share T2 row 0 and
  // can extend each other: conflict.
  EdgeId e_left = kNoEdge;
  EdgeId e_right = kNoEdge;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    int64_t a = graph.vertex(edge.u).row;
    int64_t b = graph.vertex(edge.v).row;
    if (edge.pred == 0 && a == 0 && b == 0) e_left = e;
    if (edge.pred == 1 && a == 0 && b == 0) e_right = e;
  }
  EXPECT_TRUE(EdgesConflict(graph, e_left, e_right));
  // After the right edge's alternative path dies, still conflict by
  // candidate membership; now make them incompatible: a pred-1 edge from
  // t2 row 0 and a pred-0 edge into t2 row 1 are non-conflict (different
  // tuples of T2).
  EdgeId e_other = kNoEdge;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    if (edge.pred == 0 && graph.vertex(edge.u).row == 0 &&
        graph.vertex(edge.v).row == 1) {
      e_other = e;
    }
  }
  ASSERT_NE(e_other, kNoEdge);
  EXPECT_FALSE(EdgesConflict(graph, e_other, e_right));
}

TEST(CandidatesTest, EnumerateCandidatesCounts) {
  QueryGraph graph = testing_util::MakeFigure1Chain();
  // Candidates = choices of (t1, t2=0, t3): 3 * 3 = 9 (only T2 row 0 has
  // pred-1 edges).
  int count = 0;
  EnumerateCandidates(graph, [&](const Assignment&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 9);
  // Early abort works.
  count = 0;
  EnumerateCandidates(graph, [&](const Assignment&) {
    ++count;
    return count < 3;
  });
  EXPECT_EQ(count, 3);
}

TEST(CandidatesTest, BestCandidateMaximizesProduct) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  std::optional<ScoredCandidate> best = BestCandidate(graph, true);
  ASSERT_TRUE(best.has_value());
  // The best chain goes through the 0.83 R-P edge: 0.6 * 0.83 * 0.9.
  EXPECT_NEAR(best->probability, 0.6 * 0.83 * 0.9, 1e-9);
}

TEST(CandidatesTest, BestCandidateTreatsBlueAsCertain) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  // Confirm the 0.42 edge BLUE: its chain now scores 0.6 * 1.0 * 0.9 which
  // beats 0.6 * 0.83 * 0.9.
  VertexId r1 = graph.FindVertex(1, 1);
  VertexId p1 = graph.FindVertex(2, 1);
  graph.SetColor(FindEdgeBetween(graph, r1, p1, 1), EdgeColor::kBlue);
  std::optional<ScoredCandidate> best = BestCandidate(graph, true);
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->probability, 0.6 * 1.0 * 0.9, 1e-9);
  EXPECT_EQ(best->assignment[1], r1);
}

TEST(CandidatesTest, BestCandidateRequireUnknownSkipsAnswers) {
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}};
  std::vector<QueryGraph::SyntheticEdge> edges = {
      {0, 0, 0, 0.9, true, EdgeColor::kBlue},  // Already an answer.
      {0, 1, 1, 0.5},
  };
  QueryGraph graph = QueryGraph::MakeSynthetic(2, preds, edges);
  std::optional<ScoredCandidate> best = BestCandidate(graph, true);
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->probability, 0.5, 1e-12);
  std::optional<ScoredCandidate> any = BestCandidate(graph, false);
  ASSERT_TRUE(any.has_value());
  EXPECT_NEAR(any->probability, 1.0, 1e-12);
}

TEST(CandidatesTest, BestCandidateNoneLeft) {
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}};
  std::vector<QueryGraph::SyntheticEdge> edges = {
      {0, 0, 0, 0.9, true, EdgeColor::kRed},
  };
  QueryGraph graph = QueryGraph::MakeSynthetic(2, preds, edges);
  EXPECT_FALSE(BestCandidate(graph, true).has_value());
  EXPECT_FALSE(BestCandidate(graph, false).has_value());
}

}  // namespace
}  // namespace cdb
