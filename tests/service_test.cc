// The service-layer contract: (1) restore-then-run is byte-identical to
// run-straight-through at EVERY crash point — for each phase boundary the
// sweep snapshots the session and registry, destroys both, rehydrates fresh
// ones, runs to completion, and compares edge colors, MetricsDump, and the
// full stats signature (PlatformStatsDump included) against the
// uninterrupted run, clean and under a hostile FaultProfile, at 1 and 8
// threads; (2) CdbService admits asynchronously with typed backpressure
// (bounded queue, per-tenant budgets), steps thousands of sessions
// deterministically at any thread count, and checkpoints live sessions such
// that a rebuilt service finishes them byte-identically.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util/metrics.h"
#include "common/metrics.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"
#include "exec/service.h"
#include "tests/test_util.h"

namespace cdb {
namespace {

ResolvedQuery Resolve(const GeneratedDataset& ds, const std::string& cql) {
  Statement stmt = ParseStatement(cql).value();
  return AnalyzeSelect(std::get<SelectStatement>(stmt), ds.catalog).value();
}

// Everything the session reports, as one comparable byte string (the same
// signature session_test.cc compares against CdbExecutor).
std::string StatsSignature(const ExecutionStats& stats) {
  std::ostringstream out;
  out << "tasks=" << stats.tasks_asked << "\nrounds=" << stats.rounds
      << "\nworker_answers=" << stats.worker_answers
      << "\nhits=" << stats.hits_published
      << "\nreposted=" << stats.reposted_tasks
      << "\nlate=" << stats.late_answers
      << "\nrecolored=" << stats.recolored_edges
      << "\nfallback=" << stats.fallback_colored << "\nround_sizes=";
  for (int64_t size : stats.round_sizes) out << size << ",";
  out << "\nstarved=";
  for (int64_t id : stats.starved_task_ids) out << id << ",";
  out << "\nunique_answers=";
  for (const auto& [task, n] : stats.unique_answers_per_task) {
    out << task << ":" << n << ",";
  }
  out << "\n" << PlatformStatsDump(stats.platform);
  return out.str();
}

std::string ColorDump(const QueryGraph& graph) {
  std::string out;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    switch (graph.edge(e).color) {
      case EdgeColor::kBlue:
        out += 'B';
        break;
      case EdgeColor::kRed:
        out += 'R';
        break;
      default:
        out += '?';
        break;
    }
  }
  return out;
}

ExecutorOptions CleanCrowd(uint64_t seed, int threads) {
  ExecutorOptions options;
  options.platform.worker_quality_mean = 0.85;
  options.platform.redundancy = 3;
  options.platform.seed = seed;
  options.num_threads = threads;
  options.graph.num_threads = threads;
  return options;
}

ExecutorOptions HostileCrowd(uint64_t seed, int threads) {
  ExecutorOptions options = CleanCrowd(seed, threads);
  FaultProfile& fault = options.platform.fault;
  fault.abandon_prob = 0.25;
  fault.straggler_prob = 0.2;
  fault.straggler_delay_ticks = 6;
  fault.duplicate_prob = 0.1;
  fault.no_show_prob = 0.15;
  fault.task_deadline_ticks = 8;
  return options;
}

// Quality control + golden warm-up: populates every quality-control snapshot
// section (observations, worker qualities, posteriors, golden answers).
ExecutorOptions WithQualityControl(ExecutorOptions options) {
  options.quality_control = true;
  options.golden_tasks = 4;
  return options;
}

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : dataset_(MakeMiniPaperExample()),
        query_(Resolve(dataset_, kMiniExampleQuery)),
        truth_(MakeEdgeTruth(&dataset_, &query_)) {}

  GeneratedDataset dataset_;
  ResolvedQuery query_;
  EdgeTruthFn truth_;
};

// One complete run's comparable artifacts.
struct RunArtifacts {
  std::string colors;
  std::string stats_signature;  // Includes PlatformStatsDump.
  std::string metrics_dump;
  std::vector<QueryAnswer> answers;
  int64_t steps = 0;
};

RunArtifacts FinishAndCollect(QuerySession& session,
                              const MetricsRegistry& registry,
                              int64_t steps_so_far) {
  RunArtifacts artifacts;
  artifacts.steps = steps_so_far;
  while (true) {
    Result<bool> more = session.Step();
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    ++artifacts.steps;
    if (!more.value()) break;
  }
  EXPECT_TRUE(session.done());
  ExecutionResult result = session.TakeResult();
  artifacts.colors = ColorDump(session.graph());
  artifacts.stats_signature = StatsSignature(result.stats);
  artifacts.metrics_dump = MetricsDump(registry);
  artifacts.answers = result.answers;
  return artifacts;
}

// The tentpole invariant: for every crash point k, running k steps,
// snapshotting session + registry, destroying both, and rehydrating into
// fresh objects finishes byte-identically to never having crashed.
void CrashPointSweep(const ResolvedQuery* query, const ExecutorOptions& base,
                     const EdgeTruthFn& truth, const std::string& tag) {
  ExecutorOptions options = base;
  MetricsRegistry straight_registry;
  options.metrics = &straight_registry;
  QuerySession straight(query, options, truth);
  const RunArtifacts baseline =
      FinishAndCollect(straight, straight_registry, 0);
  ASSERT_GT(baseline.steps, 2) << tag;

  for (int64_t crash = 0; crash < baseline.steps; ++crash) {
    std::string session_blob;
    std::string registry_blob;
    {
      MetricsRegistry registry;
      ExecutorOptions crash_options = base;
      crash_options.metrics = &registry;
      QuerySession session(query, crash_options, truth);
      for (int64_t s = 0; s < crash; ++s) {
        Result<bool> more = session.Step();
        ASSERT_TRUE(more.ok()) << tag << " crash=" << crash << ": "
                               << more.status().ToString();
        ASSERT_TRUE(more.value());
      }
      session_blob = session.Snapshot();
      registry_blob = registry.SerializeState();
      // Session, platform, and registry all die here — the "crash".
    }

    MetricsRegistry registry;
    ExecutorOptions resume_options = base;
    resume_options.metrics = &registry;
    // Construction first (it re-registers handles and bumps construction-
    // time platform counters), then the registry restore zeroes and rewinds
    // everything to the crash point, then the session rehydrates.
    QuerySession resumed(query, resume_options, truth);
    Status registry_restored = registry.RestoreState(registry_blob);
    ASSERT_TRUE(registry_restored.ok())
        << tag << " crash=" << crash << ": " << registry_restored.ToString();
    Status session_restored = resumed.Restore(session_blob);
    ASSERT_TRUE(session_restored.ok())
        << tag << " crash=" << crash << ": " << session_restored.ToString();

    const RunArtifacts rerun = FinishAndCollect(resumed, registry, crash);
    EXPECT_EQ(baseline.colors, rerun.colors) << tag << " crash=" << crash;
    EXPECT_EQ(baseline.stats_signature, rerun.stats_signature)
        << tag << " crash=" << crash;
    EXPECT_EQ(baseline.metrics_dump, rerun.metrics_dump)
        << tag << " crash=" << crash;
    EXPECT_EQ(baseline.answers, rerun.answers) << tag << " crash=" << crash;
    EXPECT_EQ(baseline.steps, rerun.steps) << tag << " crash=" << crash;
  }
}

TEST_F(ServiceTest, CrashPointResumeSweepCleanCrowd) {
  for (int threads : {1, 8}) {
    CrashPointSweep(&query_, CleanCrowd(31, threads), truth_,
                    "clean threads=" + std::to_string(threads));
  }
}

TEST_F(ServiceTest, CrashPointResumeSweepHostileCrowd) {
  for (int threads : {1, 8}) {
    CrashPointSweep(&query_, HostileCrowd(31, threads), truth_,
                    "hostile threads=" + std::to_string(threads));
  }
}

TEST_F(ServiceTest, CrashPointResumeSweepQualityControlClean) {
  for (int threads : {1, 8}) {
    CrashPointSweep(&query_, WithQualityControl(CleanCrowd(32, threads)),
                    truth_, "qc-clean threads=" + std::to_string(threads));
  }
}

TEST_F(ServiceTest, CrashPointResumeSweepQualityControlHostile) {
  for (int threads : {1, 8}) {
    CrashPointSweep(&query_, WithQualityControl(HostileCrowd(32, threads)),
                    truth_, "qc-hostile threads=" + std::to_string(threads));
  }
}

// --- CdbService: admission, fairness, determinism, checkpointing ---

TEST_F(ServiceTest, ServiceRunsManySessionsToCompletion) {
  ServiceOptions service_options;
  service_options.max_live_sessions = 16;
  service_options.max_pending = 64;
  CdbService service(service_options);

  const char* tenants[] = {"alice", "bob", "carol"};
  std::map<int64_t, uint64_t> seed_of;
  for (int i = 0; i < 24; ++i) {
    Result<int64_t> id = service.Submit(tenants[i % 3], &query_,
                                        CleanCrowd(100 + i, 1), truth_);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    seed_of[id.value()] = 100 + i;
  }
  service.RunUntilDrained();
  EXPECT_FALSE(service.HasWork());
  EXPECT_EQ(service.stats().completed, 24);
  EXPECT_EQ(service.stats().failed, 0);

  // Every serviced query finishes exactly as it would standalone.
  for (const auto& [id, seed] : seed_of) {
    Result<ExecutionResult> from_service = service.TakeResult(id);
    ASSERT_TRUE(from_service.ok()) << from_service.status().ToString();
    QuerySession standalone(&query_, CleanCrowd(seed, 1), truth_);
    ExecutionResult expected = standalone.RunToCompletion().value();
    EXPECT_EQ(StatsSignature(expected.stats),
              StatsSignature(from_service.value().stats))
        << "seed=" << seed;
    EXPECT_EQ(expected.answers, from_service.value().answers);
  }
  // Draining: a second take is a typed miss.
  EXPECT_EQ(service.TakeResult(1).status().code(), StatusCode::kNotFound);
}

TEST_F(ServiceTest, AdmissionControlBoundedQueueRejectsTyped) {
  ServiceOptions service_options;
  service_options.max_live_sessions = 4;
  service_options.max_pending = 3;
  CdbService service(service_options);

  int rejected = 0;
  for (int i = 0; i < 8; ++i) {
    Result<int64_t> id =
        service.Submit("alice", &query_, CleanCrowd(200 + i, 1), truth_);
    if (!id.ok()) {
      EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 5);  // 3 queued, the rest pushed back.
  EXPECT_EQ(service.stats().rejected_queue, 5);
  // Backpressure is not terminal: after a wave drains the queue into the
  // live set, submits are accepted again.
  EXPECT_GT(service.StepWave(), 0);
  EXPECT_TRUE(
      service.Submit("alice", &query_, CleanCrowd(299, 1), truth_).ok());
  service.RunUntilDrained();
  EXPECT_EQ(service.stats().completed, 4);
}

TEST_F(ServiceTest, AdmissionControlTenantBudgetIsPerTenant) {
  ServiceOptions service_options;
  service_options.tenant_budget = 2;  // Two unit-cost queries per tenant.
  CdbService service(service_options);

  EXPECT_TRUE(service.Submit("alice", &query_, CleanCrowd(1, 1), truth_).ok());
  EXPECT_TRUE(service.Submit("alice", &query_, CleanCrowd(2, 1), truth_).ok());
  Result<int64_t> third =
      service.Submit("alice", &query_, CleanCrowd(3, 1), truth_);
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  // One tenant exhausting its share does not starve another.
  EXPECT_TRUE(service.Submit("bob", &query_, CleanCrowd(4, 1), truth_).ok());
  EXPECT_EQ(service.stats().rejected_budget, 1);

  // A query declaring a budget is charged that budget, all-or-nothing.
  ExecutorOptions expensive = CleanCrowd(5, 1);
  expensive.budget = 99;
  Result<int64_t> over = service.Submit("bob", &query_, expensive, truth_);
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(service.Submit("bob", &query_, CleanCrowd(6, 1), truth_).ok());

  service.RunUntilDrained();
  EXPECT_EQ(service.stats().completed, 4);
}

TEST_F(ServiceTest, ServiceWavesDeterministicAcrossThreadCounts) {
  std::map<int, std::map<int64_t, std::string>> signatures_by_threads;
  std::map<int, std::string> metrics_by_threads;
  for (int threads : {1, 8}) {
    ServiceOptions service_options;
    service_options.num_threads = threads;
    MetricsRegistry registry;
    service_options.metrics = &registry;
    CdbService service(service_options);
    for (int i = 0; i < 12; ++i) {
      ExecutorOptions options =
          i % 2 == 0 ? CleanCrowd(300 + i, 1) : HostileCrowd(300 + i, 1);
      ASSERT_TRUE(
          service.Submit(i % 3 == 0 ? "alice" : "bob", &query_, options, truth_)
              .ok());
    }
    service.RunUntilDrained();
    for (int64_t id = 1; id <= 12; ++id) {
      Result<ExecutionResult> result = service.TakeResult(id);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      signatures_by_threads[threads][id] = StatsSignature(result.value().stats);
    }
    metrics_by_threads[threads] = MetricsDump(registry);
  }
  EXPECT_EQ(signatures_by_threads[1], signatures_by_threads[8]);
  // The registry folds commutative integer sums, so even the shared dump is
  // byte-identical across wave parallelism.
  EXPECT_EQ(metrics_by_threads[1], metrics_by_threads[8]);
}

TEST_F(ServiceTest, ServiceCheckpointRebuildFinishesByteIdentically) {
  ServiceOptions service_options;
  service_options.checkpoint_interval = 3;
  CdbService crashed(service_options);
  std::map<int64_t, uint64_t> seed_of;
  for (int i = 0; i < 6; ++i) {
    ExecutorOptions options = i % 2 == 0 ? CleanCrowd(400 + i, 1)
                                         : HostileCrowd(400 + i, 1);
    Result<int64_t> id = crashed.Submit("alice", &query_, options, truth_);
    ASSERT_TRUE(id.ok());
    seed_of[id.value()] = 400 + i;
  }
  // Part-way through, the periodic checkpoint fires; then the service dies.
  for (int wave = 0; wave < 9; ++wave) crashed.StepWave();
  ASSERT_GT(crashed.stats().checkpoints, 0);
  ASSERT_GT(crashed.stats().checkpoint_bytes, 0);
  const std::map<int64_t, std::string> bundle = crashed.last_checkpoint();
  ASSERT_FALSE(bundle.empty());

  // A fresh service rehydrates every checkpointed session and finishes each
  // one exactly as an uninterrupted standalone run would.
  CdbService rebuilt(ServiceOptions{});
  std::map<int64_t, int64_t> rebuilt_id_of;  // original id -> rebuilt id.
  for (const auto& [original_id, blob] : bundle) {
    ExecutorOptions options = seed_of.at(original_id) % 2 == 0
                                  ? CleanCrowd(seed_of.at(original_id), 1)
                                  : HostileCrowd(seed_of.at(original_id), 1);
    Result<int64_t> id =
        rebuilt.SubmitRestored("alice", &query_, options, truth_, blob);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    rebuilt_id_of[original_id] = id.value();
  }
  rebuilt.RunUntilDrained();
  EXPECT_EQ(rebuilt.stats().failed, 0);
  for (const auto& [original_id, rebuilt_id] : rebuilt_id_of) {
    Result<ExecutionResult> resumed = rebuilt.TakeResult(rebuilt_id);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    const uint64_t seed = seed_of.at(original_id);
    ExecutorOptions options =
        seed % 2 == 0 ? CleanCrowd(seed, 1) : HostileCrowd(seed, 1);
    QuerySession standalone(&query_, options, truth_);
    ExecutionResult expected = standalone.RunToCompletion().value();
    EXPECT_EQ(StatsSignature(expected.stats),
              StatsSignature(resumed.value().stats))
        << "seed=" << seed;
    EXPECT_EQ(expected.answers, resumed.value().answers);
  }
}

TEST_F(ServiceTest, CorruptCheckpointSurfacesAsSessionFailureNotCrash) {
  CdbService service(ServiceOptions{});
  QuerySession donor(&query_, CleanCrowd(7, 1), truth_);
  ASSERT_TRUE(donor.Step().value());
  std::string blob = donor.Snapshot();
  blob[blob.size() / 2] ^= 0x20;  // Bit-flip in the middle.
  Result<int64_t> id =
      service.SubmitRestored("alice", &query_, CleanCrowd(7, 1), truth_, blob);
  ASSERT_TRUE(id.ok());
  service.RunUntilDrained();
  EXPECT_EQ(service.stats().failed, 1);
  Result<ExecutionResult> result = service.TakeResult(id.value());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST_F(ServiceTest, WaveOrderInterleavesTenants) {
  // With the live cap below the total, admission is FIFO but stepping is
  // tenant round-robin; the single-query tenant finishes no later than the
  // flooding tenant's same-aged queries.
  ServiceOptions service_options;
  CdbService service(service_options);
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(
        service.Submit("flood", &query_, CleanCrowd(500 + i, 1), truth_).ok());
  }
  Result<int64_t> small =
      service.Submit("small", &query_, CleanCrowd(600, 1), truth_);
  ASSERT_TRUE(small.ok());

  int64_t waves_until_small_done = 0;
  while (service.HasWork()) {
    service.StepWave();
    ++waves_until_small_done;
    if (!service.TakeResult(small.value()).ok()) continue;
    break;
  }
  // The small tenant's query needed exactly its own step count in waves —
  // the flood in front of it did not delay it.
  QuerySession standalone(&query_, CleanCrowd(600, 1), truth_);
  int64_t standalone_steps = 0;
  while (standalone.Step().value()) ++standalone_steps;
  EXPECT_EQ(waves_until_small_done, standalone_steps + 1);
}

}  // namespace
}  // namespace cdb
