// The `ctest -L trace` suite: unit semantics of the metrics registry and the
// tick-keyed tracer, plus the ISSUE's determinism acceptance — MetricsDump()
// and Tracer::DumpJson() byte-identical at 1 vs 8 optimizer threads on
// seeded clean and hostile-fault runs, exactly like the platform-stats and
// edge-color dumps.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "bench_util/sim_crowd.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "crowd/platform.h"

namespace cdb {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42);
  counter.Increment(-2);  // Deltas are signed; the fold is a plain sum.
  EXPECT_EQ(counter.Value(), 40);
}

TEST(CounterTest, ConcurrentIncrementsFoldExactly) {
  // The sharded fold is an integer sum, so any interleaving of increments
  // from any number of threads must produce the exact total.
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(7);
  gauge.Set(-3);
  EXPECT_EQ(gauge.Value(), -3);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(7), 3);
  EXPECT_EQ(Histogram::BucketFor(8), 4);
  EXPECT_EQ(Histogram::BucketFor(-5), 0);  // Negative clamps to 0.
  EXPECT_EQ(Histogram::BucketFor(INT64_MAX), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, ObserveAccumulates) {
  Histogram histogram;
  histogram.Observe(0);
  histogram.Observe(3);
  histogram.Observe(3);
  histogram.Observe(100);
  EXPECT_EQ(histogram.count(), 4);
  EXPECT_EQ(histogram.sum(), 106);
  EXPECT_EQ(histogram.bucket(0), 1);
  EXPECT_EQ(histogram.bucket(Histogram::BucketFor(3)), 2);
  EXPECT_EQ(histogram.bucket(Histogram::BucketFor(100)), 1);
}

TEST(RegistryTest, HandlesAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  registry.counter("y").Increment();
  registry.histogram("h").Observe(4);
  EXPECT_EQ(&a, &registry.counter("x"));
  a.Increment(3);
  EXPECT_EQ(registry.counter("x").Value(), 3);
}

TEST(RegistryTest, DumpIsSortedNameValueLines) {
  MetricsRegistry registry;
  registry.counter("zeta").Increment(2);
  registry.counter("alpha").Increment(1);
  registry.gauge("mid").Set(-7);
  registry.histogram("hist").Observe(3);
  const std::string dump = MetricsDump(registry);
  // Sorted by name; histograms expand to .count/.sum/.bucketNN lines with
  // only non-empty buckets present.
  EXPECT_EQ(dump,
            "alpha=1\n"
            "hist.bucket02=1\n"
            "hist.count=1\n"
            "hist.sum=3\n"
            "mid=-7\n"
            "zeta=2\n");
}

TEST(RegistryTest, DumpJsonSortedObject) {
  MetricsRegistry registry;
  registry.counter("b").Increment(2);
  registry.counter("a").Increment(1);
  const std::string json = registry.DumpJson();
  EXPECT_EQ(json, "{\n  \"a\": 1,\n  \"b\": 2\n}\n");
}

TEST(RegistryDeathTest, TypeCollisionIsFatal) {
  MetricsRegistry registry;
  registry.counter("name");
  EXPECT_DEATH(registry.gauge("name"), "metric name registered");
  EXPECT_DEATH(registry.histogram("name"), "metric name registered");
}

TEST(TracerTest, SpansKeepCallOrder) {
  Tracer tracer;
  tracer.AddSpan("first", "cat", 0, 3);
  tracer.AddSpan("second", "cat", 3, 5);
  ASSERT_EQ(tracer.num_spans(), 2u);
  std::vector<TraceSpan> spans = tracer.Spans();
  EXPECT_EQ(spans[0].name, "first");
  EXPECT_EQ(spans[1].tick_begin, 3);
  EXPECT_EQ(spans[0].wall_micros, -1);
}

TEST(TracerTest, DeterministicDumpExcludesWall) {
  Tracer tracer(TracerOptions{/*record_wall=*/true});
  EXPECT_TRUE(tracer.record_wall());
  tracer.AddSpan("span", "cat", 1, 4, /*wall_micros=*/123456);
  const std::string deterministic = tracer.DumpJson();
  EXPECT_EQ(deterministic.find("wall_us"), std::string::npos);
  EXPECT_NE(deterministic.find("\"span\""), std::string::npos);
  const std::string with_wall = tracer.DumpJsonWithWall();
  EXPECT_NE(with_wall.find("wall_us"), std::string::npos);
  EXPECT_NE(with_wall.find("123456"), std::string::npos);
}

TEST(TracerTest, WallTimerMonotone) {
  WallTimer timer;
  EXPECT_GE(timer.ElapsedMicros(), 0);
  timer.Restart();
  EXPECT_GE(timer.ElapsedMs(), 0.0);
}

Task YesNoTask(TaskId id) {
  Task task;
  task.id = id;
  task.type = TaskType::kSingleChoice;
  task.question = "match?";
  task.choices = {"yes", "no"};
  task.payload = id;
  return task;
}

TruthProvider AlwaysYes() {
  return [](const Task&) {
    TaskTruth truth;
    truth.correct_choice = 0;
    return truth;
  };
}

TEST(PlatformMirrorTest, RegistryIsAViewOverPlatformStats) {
  // PlatformStats and the crowd.* registry namespace are two readouts of the
  // same events; after any run they must agree field for field.
  MetricsRegistry registry;
  Tracer tracer;
  PlatformOptions options;
  options.redundancy = 3;
  options.tasks_per_hit = 10;
  options.price_per_hit = 0.1;
  options.fault.abandon_prob = 0.3;
  options.fault.straggler_prob = 0.2;
  options.fault.straggler_delay_ticks = 6;
  options.fault.duplicate_prob = 0.1;
  options.fault.no_show_prob = 0.2;
  options.fault.task_deadline_ticks = 8;
  options.fault.max_task_expiries = 6;
  options.num_workers = 25;
  options.metrics = &registry;
  options.tracer = &tracer;
  CrowdPlatform platform(options, AlwaysYes());
  std::vector<Task> tasks;
  for (int i = 0; i < 15; ++i) tasks.push_back(YesNoTask(i));
  ASSERT_TRUE(platform.ExecuteRound(tasks).ok());

  const PlatformStats& stats = platform.stats();
  MetricsRegistry& reg = registry;
  EXPECT_EQ(reg.counter("crowd.tasks_published").Value(), stats.tasks_published);
  EXPECT_EQ(reg.counter("crowd.answers_collected").Value(),
            stats.answers_collected);
  EXPECT_EQ(reg.counter("crowd.hits_published").Value(), stats.hits_published);
  EXPECT_EQ(reg.counter("crowd.shared_hits").Value(), stats.shared_hits);
  EXPECT_EQ(reg.counter("crowd.micro_dollars_spent").Value(),
            stats.micro_dollars_spent);
  EXPECT_EQ(reg.counter("crowd.ticks").Value(), stats.ticks);
  EXPECT_EQ(reg.counter("crowd.leases_granted").Value(), stats.leases_granted);
  EXPECT_EQ(reg.counter("crowd.no_shows").Value(), stats.no_shows);
  EXPECT_EQ(reg.counter("crowd.abandons").Value(), stats.abandons);
  EXPECT_EQ(reg.counter("crowd.expiries").Value(), stats.expiries);
  EXPECT_EQ(reg.counter("crowd.reposts").Value(), stats.reposts);
  EXPECT_EQ(reg.counter("crowd.dead_lettered").Value(), stats.dead_lettered);
  EXPECT_EQ(reg.counter("crowd.late_answers").Value(), stats.late_answers);
  EXPECT_EQ(reg.counter("crowd.duplicates").Value(), stats.duplicates);

  // Each ExecuteRound emits exactly one crowd.round span over the tick clock.
  ASSERT_EQ(tracer.num_spans(), 1u);
  const TraceSpan span = tracer.Spans()[0];
  EXPECT_EQ(span.name, "crowd.round");
  EXPECT_EQ(span.tick_begin, 0);
  EXPECT_EQ(span.tick_end, stats.ticks);
}

FaultProfile HostileProfile() {
  FaultProfile fault;
  fault.abandon_prob = 0.3;
  fault.straggler_prob = 0.2;
  fault.straggler_delay_ticks = 6;
  fault.duplicate_prob = 0.1;
  fault.no_show_prob = 0.2;
  fault.task_deadline_ticks = 8;
  fault.max_task_expiries = 6;
  return fault;
}

// One seeded end-to-end run with fresh observability sinks; returns the two
// deterministic byte surfaces.
struct ObservedRun {
  std::string metrics_dump;
  std::string trace_json;
};

ObservedRun RunObserved(uint64_t seed, bool hostile, int threads) {
  MetricsRegistry registry;
  Tracer tracer;  // Deterministic mode: no wall durations recorded.
  SimCrowdConfig config;
  config.seed = seed;
  if (hostile) config.fault = HostileProfile();
  config.quality_control = true;
  config.cost_method = CostMethod::kSampling;
  config.num_threads = threads;
  config.metrics = &registry;
  config.tracer = &tracer;
  SimCrowdReport report = RunSimCrowd(config).value();
  EXPECT_TRUE(report.violations.empty());
  ObservedRun run;
  run.metrics_dump = MetricsDump(registry);
  run.trace_json = tracer.DumpJson();
  return run;
}

TEST(TraceDeterminismTest, MetricsAndTraceByteIdenticalAcrossThreads) {
  // The ISSUE's acceptance bar: seeded runs at 1 and 8 optimizer threads
  // (and reruns at each count) produce byte-identical metrics dumps and
  // tick-based traces, on both clean and hostile-fault schedules.
  for (bool hostile : {false, true}) {
    for (uint64_t seed : {1u, 7u, 13u}) {
      ObservedRun reference = RunObserved(seed, hostile, /*threads=*/1);
      EXPECT_FALSE(reference.metrics_dump.empty());
      EXPECT_FALSE(reference.trace_json.empty());
      for (int threads : {1, 8}) {
        for (int repeat = 0; repeat < 2; ++repeat) {
          if (threads == 1 && repeat == 0) continue;  // The reference itself.
          ObservedRun run = RunObserved(seed, hostile, threads);
          EXPECT_EQ(run.metrics_dump, reference.metrics_dump)
              << "seed " << seed << " hostile " << hostile << " threads "
              << threads;
          EXPECT_EQ(run.trace_json, reference.trace_json)
              << "seed " << seed << " hostile " << hostile << " threads "
              << threads;
        }
      }
    }
  }
}

TEST(TraceDeterminismTest, SessionPhasesAndRoundsAreInstrumented) {
  // Spot-check that the instrumentation actually fires end to end: phase
  // spans and session counters must be present after a hostile run.
  MetricsRegistry registry;
  Tracer tracer;
  SimCrowdConfig config;
  config.seed = 5;
  config.fault = HostileProfile();
  config.metrics = &registry;
  config.tracer = &tracer;
  SimCrowdReport report = RunSimCrowd(config).value();
  EXPECT_TRUE(report.violations.empty());
  const std::string dump = MetricsDump(registry);
  EXPECT_NE(dump.find("session.phase.publish.tasks="), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("session.rounds="), std::string::npos);
  EXPECT_NE(dump.find("crowd.leases_granted="), std::string::npos);
  EXPECT_NE(dump.find("session.round_size.count="), std::string::npos);
  EXPECT_GT(registry.counter("session.rounds").Value(), 0);
  bool saw_session_span = false;
  bool saw_crowd_span = false;
  for (const TraceSpan& span : tracer.Spans()) {
    if (span.category == "session") saw_session_span = true;
    if (span.name == "crowd.round") saw_crowd_span = true;
  }
  EXPECT_TRUE(saw_session_span);
  EXPECT_TRUE(saw_crowd_span);
}

TEST(TraceDeterminismTest, QualityControlEmitsEmMetrics) {
  MetricsRegistry registry;
  SimCrowdConfig config;
  config.seed = 9;
  config.quality_control = true;
  config.worker_quality_mean = 0.85;
  config.worker_quality_stddev = 0.05;
  config.metrics = &registry;
  SimCrowdReport report = RunSimCrowd(config).value();
  EXPECT_TRUE(report.violations.empty());
  EXPECT_GT(registry.counter("quality.em.runs").Value(), 0);
  EXPECT_GT(registry.counter("quality.em.iterations").Value(), 0);
  EXPECT_EQ(registry.histogram("quality.em.iterations_per_run").count(),
            registry.counter("quality.em.runs").Value());
}

}  // namespace
}  // namespace cdb
