#include <gtest/gtest.h>

#include "bench_util/metrics.h"
#include "bench_util/queries.h"
#include "bench_util/runner.h"
#include "bench_util/table_printer.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"

namespace cdb {
namespace {

TEST(MetricsTest, F1Math) {
  std::vector<QueryAnswer> returned = {{{0, 0}}, {{1, 1}}, {{2, 2}}};
  std::vector<QueryAnswer> truth = {{{1, 1}}, {{2, 2}}, {{3, 3}}, {{4, 4}}};
  PrecisionRecall pr = ComputeF1(returned, truth);
  EXPECT_EQ(pr.correct, 2);
  EXPECT_NEAR(pr.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(pr.recall, 0.5, 1e-12);
  EXPECT_NEAR(pr.f1, 2 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5), 1e-12);
}

TEST(MetricsTest, EmptyInputs) {
  PrecisionRecall pr = ComputeF1({}, {});
  EXPECT_EQ(pr.precision, 0.0);
  EXPECT_EQ(pr.recall, 0.0);
  EXPECT_EQ(pr.f1, 0.0);
}

TEST(MetricsTest, TrueAnswersOnMiniExample) {
  GeneratedDataset ds = MakeMiniPaperExample();
  Statement stmt = ParseStatement(kMiniExampleQuery).value();
  ResolvedQuery query =
      AnalyzeSelect(std::get<SelectStatement>(stmt), ds.catalog).value();
  std::vector<QueryAnswer> answers = TrueAnswers(ds, query);
  // True chains (paper, researcher, citation, university), including the
  // paper's three listed answers (u8,r8,p4,c6), (u9,r9,p5,c7),
  // (u12,r12,p8,c12) plus the genuinely-true Garcia-Molina and DataSift
  // chains our entity links encode.
  auto contains = [&](int64_t p, int64_t r, int64_t c, int64_t u) {
    for (const QueryAnswer& a : answers) {
      if (a.rows[0] == p && a.rows[1] == r && a.rows[2] == c && a.rows[3] == u) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(contains(3, 7, 5, 7));    // p4, r8, c6, u8.
  EXPECT_TRUE(contains(4, 8, 6, 8));    // p5, r9, c7, u9.
  EXPECT_TRUE(contains(7, 11, 11, 11)); // p8, r12, c12, u12.
}

TEST(MetricsTest, TrueAnswersRespectSelections) {
  GeneratedDataset ds = MakeMiniPaperExample();
  Statement stmt = ParseStatement(
                       "SELECT University.name FROM University "
                       "WHERE University.country CROWDEQUAL 'UK'")
                       .value();
  ResolvedQuery query =
      AnalyzeSelect(std::get<SelectStatement>(stmt), ds.catalog).value();
  std::vector<QueryAnswer> answers = TrueAnswers(ds, query);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].rows[0], 10);  // u11, Univ. of Cambridge.
}

TEST(QueriesTest, FiveQueriesPerDataset) {
  std::vector<BenchmarkQuery> paper = PaperQueries();
  std::vector<BenchmarkQuery> award = AwardQueries();
  ASSERT_EQ(paper.size(), 5u);
  ASSERT_EQ(award.size(), 5u);
  EXPECT_EQ(paper[0].label, "2J");
  EXPECT_EQ(paper[4].label, "3J2S");
}

TEST(QueriesTest, PaperQueriesAnalyzeAgainstPaperDataset) {
  GeneratedDataset ds = MakeMiniPaperExample();  // Same schema as generator.
  for (const BenchmarkQuery& bq : PaperQueries()) {
    Statement stmt = ParseStatement(bq.cql).value();
    auto query = AnalyzeSelect(std::get<SelectStatement>(stmt), ds.catalog);
    EXPECT_TRUE(query.ok()) << bq.label << ": " << query.status().ToString();
  }
}

TEST(RunnerTest, MethodNamesUnique) {
  std::set<std::string> names;
  for (Method m : AllMethods()) names.insert(MethodName(m));
  EXPECT_EQ(names.size(), 9u);
}

TEST(RunnerTest, RunsCdbOnMiniExample) {
  GeneratedDataset ds = MakeMiniPaperExample();
  RunConfig config;
  config.worker_quality = 1.0;
  config.worker_quality_stddev = 0.0;
  config.redundancy = 1;
  config.repetitions = 2;
  RunOutcome outcome = RunMethod(Method::kCdb, ds, kMiniExampleQuery, config).value();
  EXPECT_GT(outcome.tasks, 0.0);
  EXPECT_GT(outcome.rounds, 0.0);
  EXPECT_DOUBLE_EQ(outcome.precision, 1.0);
}

TEST(RunnerTest, RejectsNonSelect) {
  GeneratedDataset ds = MakeMiniPaperExample();
  RunConfig config;
  EXPECT_FALSE(
      RunMethod(Method::kCdb, ds, "CREATE TABLE T (x int)", config).ok());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"method", "tasks"});
  printer.AddRow({"CDB", "12"});
  printer.AddRow({"CrowdDB", "345"});
  std::string out = printer.ToString();
  EXPECT_NE(out.find("| method  | tasks |"), std::string::npos);
  EXPECT_NE(out.find("| CDB     | 12    |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter printer({"a", "b", "c"});
  printer.AddRow({"x"});
  EXPECT_NE(printer.ToString().find("| x |"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(FormatDouble(1.257, 2), "1.26");
  EXPECT_EQ(FormatCount(17.4), "17");
}

}  // namespace
}  // namespace cdb
