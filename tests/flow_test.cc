#include <gtest/gtest.h>

#include <set>

#include "flow/dinic.h"
#include "flow/min_cut.h"
#include "graph/candidates.h"
#include "graph/structure.h"
#include "tests/test_util.h"

namespace cdb {
namespace {

TEST(DinicTest, SingleArc) {
  MaxFlow flow(2);
  flow.AddArc(0, 1, 7);
  EXPECT_EQ(flow.Compute(0, 1), 7);
}

TEST(DinicTest, Bottleneck) {
  // 0 -> 1 -> 2 with capacities 5 and 3.
  MaxFlow flow(3);
  flow.AddArc(0, 1, 5);
  flow.AddArc(1, 2, 3);
  EXPECT_EQ(flow.Compute(0, 2), 3);
  std::vector<bool> side = flow.SourceSide(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
}

TEST(DinicTest, ClassicNetwork) {
  // A standard max-flow example with value 19.
  MaxFlow flow(6);
  flow.AddArc(0, 1, 10);
  flow.AddArc(0, 2, 10);
  flow.AddArc(1, 2, 2);
  flow.AddArc(1, 3, 4);
  flow.AddArc(1, 4, 8);
  flow.AddArc(2, 4, 9);
  flow.AddArc(4, 3, 6);
  flow.AddArc(3, 5, 10);
  flow.AddArc(4, 5, 10);
  EXPECT_EQ(flow.Compute(0, 5), 19);
}

TEST(DinicTest, DisconnectedIsZero) {
  MaxFlow flow(4);
  flow.AddArc(0, 1, 5);
  flow.AddArc(2, 3, 5);
  EXPECT_EQ(flow.Compute(0, 3), 0);
}

TEST(DinicTest, ParallelArcsAdd) {
  MaxFlow flow(2);
  flow.AddArc(0, 1, 2);
  flow.AddArc(0, 1, 3);
  EXPECT_EQ(flow.Compute(0, 1), 5);
}

// --- Lemma-1 chain selection ---

std::vector<EdgeColor> AllColors(const QueryGraph& graph, EdgeColor color) {
  return std::vector<EdgeColor>(static_cast<size_t>(graph.num_edges()), color);
}

TEST(ChainMinCutTest, Figure1OptimalThreeAsks) {
  // The motivating example: the 3 pred-1 edges are RED; cutting them saves
  // all 9 pred-0 edges.
  QueryGraph graph = testing_util::MakeFigure1Chain();
  std::vector<EdgeColor> colors(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    colors[static_cast<size_t>(e)] =
        graph.edge(e).pred == 1 ? EdgeColor::kRed : EdgeColor::kBlue;
  }
  ChainSelection sel =
      ChainMinCutSelection(graph, BuildChainPlan(graph), colors);
  EXPECT_TRUE(sel.blue_chain_edges.empty());  // No complete blue chain.
  EXPECT_EQ(sel.cut_edges.size(), 3u);
  for (EdgeId e : sel.cut_edges) EXPECT_EQ(graph.edge(e).pred, 1);
}

TEST(ChainMinCutTest, AllBlueAsksEverythingOnChains) {
  QueryGraph graph = testing_util::MakeFigure1Chain();
  ChainSelection sel = ChainMinCutSelection(graph, BuildChainPlan(graph),
                                            AllColors(graph, EdgeColor::kBlue));
  // Every edge participates in a complete blue chain here (T2 row 0 carries
  // all pred-1 edges; rows 1,2 of T2 have no pred-1 edge so their pred-0
  // edges are NOT on blue chains).
  std::set<EdgeId> blue(sel.blue_chain_edges.begin(), sel.blue_chain_edges.end());
  int pred0_on_chain = 0;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const GraphEdge& edge = graph.edge(e);
    // Only T2 row 0 has pred-1 edges, so blue chains are exactly those
    // passing through it: all pred-1 edges plus pred-0 edges into T2 row 0.
    bool expected_on_chain =
        edge.pred == 1 || (edge.pred == 0 && graph.vertex(edge.v).row == 0);
    EXPECT_EQ(blue.count(e) > 0, expected_on_chain) << "edge " << e;
    if (edge.pred == 0 && blue.count(e)) ++pred0_on_chain;
  }
  EXPECT_EQ(pred0_on_chain, 3);
  EXPECT_TRUE(sel.cut_edges.empty());  // Nothing red to cut.
}

TEST(ChainMinCutTest, MixedFigure5Style) {
  // Figure-5 flavored: one complete blue chain plus red deviations; the
  // selection must contain the blue chain and a minimum red cut, and the
  // total must refute every alternative chain.
  //
  // Layout (chain A-B-C): blue chain a0-b0-c0; deviations a1-b0 (red),
  // b0-c1 (red), a0-b1 (red), b1-c0 (red).
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}, {true, false, 1, 2}};
  std::vector<QueryGraph::SyntheticEdge> edges = {
      {0, 0, 0, 0.9},  // a0-b0 blue-chain
      {1, 0, 0, 0.9},  // b0-c0 blue-chain
      {0, 1, 0, 0.4},  // a1-b0 red
      {1, 0, 1, 0.4},  // b0-c1 red
      {0, 0, 1, 0.4},  // a0-b1 red
      {1, 1, 0, 0.4},  // b1-c0 red
  };
  QueryGraph graph = QueryGraph::MakeSynthetic(3, preds, edges);
  std::vector<EdgeColor> colors = {EdgeColor::kBlue, EdgeColor::kBlue,
                                   EdgeColor::kRed,  EdgeColor::kRed,
                                   EdgeColor::kRed,  EdgeColor::kRed};
  ChainSelection sel =
      ChainMinCutSelection(graph, BuildChainPlan(graph), colors);
  std::set<EdgeId> blue(sel.blue_chain_edges.begin(), sel.blue_chain_edges.end());
  EXPECT_EQ(blue, (std::set<EdgeId>{0, 1}));
  // Red deviations through b0 (edges 2 and 3) each form their own s-t path
  // via the split blue vertex; the b1 path needs one of {4, 5}. Min cut = 3.
  EXPECT_EQ(sel.cut_edges.size(), 3u);
  std::set<EdgeId> cut(sel.cut_edges.begin(), sel.cut_edges.end());
  EXPECT_TRUE(cut.count(2));
  EXPECT_TRUE(cut.count(3));
  EXPECT_TRUE(cut.count(4) || cut.count(5));
}

TEST(ChainMinCutTest, SelectionIsSound) {
  // Property: for random colorings of the Figure-1 graph, the selected edges
  // are always enough to determine all answers — i.e. every complete BLUE
  // chain consists of selected blue edges, and every non-blue chain contains
  // a selected RED edge.
  QueryGraph graph = testing_util::MakeFigure1Chain();
  ChainPlan plan = BuildChainPlan(graph);
  for (uint64_t mask = 0; mask < 64; ++mask) {
    // Color the 3 pred-1 edges and 3 of the pred-0 edges from the mask.
    std::vector<EdgeColor> colors(static_cast<size_t>(graph.num_edges()),
                                  EdgeColor::kBlue);
    int bit = 0;
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (graph.edge(e).pred == 1 || graph.vertex(graph.edge(e).u).row == 0) {
        if (bit < 6) {
          colors[static_cast<size_t>(e)] =
              (mask >> bit) & 1 ? EdgeColor::kBlue : EdgeColor::kRed;
          ++bit;
        }
      }
    }
    ChainSelection sel = ChainMinCutSelection(graph, plan, colors);
    std::set<EdgeId> selected(sel.blue_chain_edges.begin(),
                              sel.blue_chain_edges.end());
    selected.insert(sel.cut_edges.begin(), sel.cut_edges.end());
    // Enumerate all chains (t1, t2, t3) and check coverage.
    for (int64_t a = 0; a < 3; ++a) {
      for (int64_t b = 0; b < 3; ++b) {
        for (int64_t c = 0; c < 3; ++c) {
          VertexId va = graph.FindVertex(0, a);
          VertexId vb = graph.FindVertex(1, b);
          VertexId vc = graph.FindVertex(2, c);
          EdgeId e0 = FindEdgeBetween(graph, va, vb, 0);
          EdgeId e1 = vb == kNoVertex || vc == kNoVertex
                          ? kNoEdge
                          : FindEdgeBetween(graph, vb, vc, 1);
          if (e0 == kNoEdge || e1 == kNoEdge) continue;
          bool all_blue = colors[static_cast<size_t>(e0)] == EdgeColor::kBlue &&
                          colors[static_cast<size_t>(e1)] == EdgeColor::kBlue;
          if (all_blue) {
            EXPECT_TRUE(selected.count(e0) && selected.count(e1))
                << "answer chain not fully asked, mask=" << mask;
          } else {
            bool refuted =
                (selected.count(e0) && colors[static_cast<size_t>(e0)] == EdgeColor::kRed) ||
                (selected.count(e1) && colors[static_cast<size_t>(e1)] == EdgeColor::kRed);
            EXPECT_TRUE(refuted) << "non-answer chain not refuted, mask=" << mask;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace cdb
