// Concurrency tests for the parallel-execution substrate and the determinism
// contract of the parallelized optimizer stages: every stage must produce
// bit-identical results at any thread count. Labeled `parallel` in ctest so a
// TSan build can target them (`ctest -L parallel`).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_util/sim_crowd.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "cost/sampling.h"
#include "quality/truth_inference.h"
#include "similarity/sim_join.h"
#include "tests/test_util.h"

namespace cdb {
namespace {

const std::vector<int> kThreadCounts = {1, 2, 8};

// ------------------------------------------------------------ ThreadPool ---

TEST(ThreadPoolTest, SchedulesAndRunsAllTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&done] { done.fetch_add(1); });
  }
  // Destruction joins the workers after the queue drains.
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, GlobalPoolMatchesHardware) {
  ASSERT_NE(ThreadPool::Global(), nullptr);
  EXPECT_EQ(ThreadPool::Global()->num_threads(),
            ThreadPool::HardwareConcurrency());
}

// ------------------------------------------------------------ ParallelFor ---

TEST(ParallelForTest, EmptyRangeNeverInvokesCallback) {
  for (int threads : kThreadCounts) {
    std::atomic<int> calls{0};
    ParallelFor(5, 5, 1, [&](int64_t, int64_t, int) { calls.fetch_add(1); },
                threads);
    ParallelFor(7, 3, 1, [&](int64_t, int64_t, int) { calls.fetch_add(1); },
                threads);
    EXPECT_EQ(calls.load(), 0);
  }
}

TEST(ParallelForTest, GrainLargerThanRangeIsOneChunk) {
  for (int threads : kThreadCounts) {
    std::vector<std::tuple<int64_t, int64_t, int>> chunks;
    ParallelFor(
        2, 5, /*grain=*/100,
        [&](int64_t lo, int64_t hi, int chunk) { chunks.push_back({lo, hi, chunk}); },
        threads);
    ASSERT_EQ(chunks.size(), 1u);  // Single chunk => runs inline, no race.
    EXPECT_EQ(chunks[0], std::make_tuple(int64_t{2}, int64_t{5}, 0));
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : kThreadCounts) {
    std::vector<std::atomic<int>> counts(1000);
    ParallelFor(
        0, 1000, /*grain=*/7,
        [&](int64_t lo, int64_t hi, int) {
          for (int64_t i = lo; i < hi; ++i) counts[static_cast<size_t>(i)]++;
        },
        threads);
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  }
}

TEST(ParallelForTest, ChunkGeometryIndependentOfThreadCount) {
  auto chunks_at = [](int threads) {
    std::mutex mu;
    std::set<std::tuple<int64_t, int64_t, int>> chunks;
    ParallelFor(
        3, 45, /*grain=*/4,
        [&](int64_t lo, int64_t hi, int chunk) {
          std::lock_guard<std::mutex> lock(mu);
          chunks.insert({lo, hi, chunk});
        },
        threads);
    return chunks;
  };
  auto serial = chunks_at(1);
  EXPECT_EQ(serial.size(), 11u);  // ceil(42 / 4).
  for (int threads : kThreadCounts) EXPECT_EQ(chunks_at(threads), serial);
}

TEST(ParallelForStatusTest, AllChunksOkReturnsOk) {
  for (int threads : kThreadCounts) {
    EXPECT_TRUE(ParallelForStatus(
                    0, 100, 9,
                    [](int64_t, int64_t, int) { return Status::Ok(); }, threads)
                    .ok());
  }
}

TEST(ParallelForStatusTest, ReportsLowestFailingChunkDeterministically) {
  for (int threads : kThreadCounts) {
    std::atomic<int> chunks_run{0};
    Status status = ParallelForStatus(
        0, 100, /*grain=*/10,
        [&](int64_t, int64_t, int chunk) {
          chunks_run.fetch_add(1);
          if (chunk == 7) return Status::Internal("chunk 7");
          if (chunk == 3) return Status::InvalidArgument("chunk 3");
          return Status::Ok();
        },
        threads);
    EXPECT_EQ(chunks_run.load(), 10);  // No exceptions, no early abort.
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(status.message(), "chunk 3");
  }
}

// ------------------------------------------------------------ Rng streams ---

TEST(RngStreamTest, StreamsAreDeterministicAndDistinct) {
  Rng a(123, 7);
  Rng b(123, 7);
  Rng c(123, 8);
  bool any_differ = false;
  for (int i = 0; i < 64; ++i) {
    double va = a.Uniform();
    EXPECT_EQ(va, b.Uniform());
    if (va != c.Uniform()) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

// ------------------------------------------------- Stage determinism ---

TEST(ParallelDeterminismTest, SampleMinCutOrderIdenticalAcrossThreadCounts) {
  for (const QueryGraph& graph : {testing_util::MakeFigure4Neighborhood(),
                                  testing_util::MakeFigure1Chain()}) {
    SamplingOptions serial;
    serial.num_samples = 50;
    serial.seed = 11;
    serial.num_threads = 1;
    std::vector<EdgeId> expected = SampleMinCutOrder(graph, serial);
    for (int threads : kThreadCounts) {
      SamplingOptions options = serial;
      options.num_threads = threads;
      EXPECT_EQ(SampleMinCutOrder(graph, options), expected)
          << "threads=" << threads;
    }
  }
}

std::vector<std::string> RandomStrings(Rng& rng, size_t count) {
  const std::vector<std::string> words = {
      "query", "crowd", "join",  "data",   "clean", "entity", "match",
      "graph", "cost",  "task",  "worker", "tuple", "select", "optimize",
  };
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string s;
    int64_t n = rng.UniformInt(1, 4);
    for (int64_t w = 0; w < n; ++w) {
      if (w > 0) s += ' ';
      s += words[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(words.size()) - 1))];
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(ParallelDeterminismTest, SimilarityJoinIdenticalAcrossThreadCounts) {
  const std::vector<std::pair<SimilarityFunction, double>> cases = {
      {SimilarityFunction::kNoSim, 0.5},
      {SimilarityFunction::kEditDistance, 0.5},
      {SimilarityFunction::kWordJaccard, 0.4},
      {SimilarityFunction::kQGramJaccard, 0.3},
      {SimilarityFunction::kQGramCosine, 0.4},
  };
  Rng rng(99);
  // Enough rows that the probe loop actually splits into several chunks.
  std::vector<std::string> left = RandomStrings(rng, 300);
  std::vector<std::string> right = RandomStrings(rng, 300);
  for (const auto& [fn, threshold] : cases) {
    SimJoinOptions serial{/*num_threads=*/1};
    std::vector<SimPair> expected =
        SimilarityJoin(left, right, fn, threshold, serial);
    for (int threads : kThreadCounts) {
      SimJoinOptions options{threads};
      std::vector<SimPair> got =
          SimilarityJoin(left, right, fn, threshold, options);
      ASSERT_EQ(got.size(), expected.size())
          << SimilarityFunctionName(fn) << " threads=" << threads;
      for (size_t k = 0; k < got.size(); ++k) {
        EXPECT_EQ(got[k].left, expected[k].left);
        EXPECT_EQ(got[k].right, expected[k].right);
        // Bit-identical, not just approximately equal.
        EXPECT_EQ(got[k].sim, expected[k].sim);
      }
    }
  }
}

TEST(ParallelDeterminismTest, TruthInferenceIdenticalAcrossThreadCounts) {
  // Simulated answers: 300 tasks x 5 answers, 40 workers of varying quality.
  Rng rng(7);
  std::vector<double> true_quality(40);
  for (double& q : true_quality) q = rng.Uniform(0.55, 0.95);
  std::vector<ChoiceObservation> obs;
  for (int task = 0; task < 300; ++task) {
    int truth = static_cast<int>(rng.UniformInt(0, 1));
    for (int a = 0; a < 5; ++a) {
      int worker = static_cast<int>(rng.UniformInt(0, 39));
      bool correct = rng.Bernoulli(true_quality[static_cast<size_t>(worker)]);
      obs.push_back({task, worker, correct ? truth : 1 - truth});
    }
  }
  EmOptions serial;
  serial.num_threads = 1;
  InferenceResult expected = InferSingleChoiceEm(obs, serial);
  for (int threads : kThreadCounts) {
    EmOptions options;
    options.num_threads = threads;
    InferenceResult got = InferSingleChoiceEm(obs, options);
    ASSERT_EQ(got.posteriors.size(), expected.posteriors.size());
    for (const auto& [task, posterior] : expected.posteriors) {
      ASSERT_TRUE(got.posteriors.count(task));
      const std::vector<double>& got_posterior = got.posteriors.at(task);
      ASSERT_EQ(got_posterior.size(), posterior.size());
      for (size_t i = 0; i < posterior.size(); ++i) {
        EXPECT_EQ(got_posterior[i], posterior[i]) << "threads=" << threads;
      }
    }
    ASSERT_EQ(got.worker_quality.size(), expected.worker_quality.size());
    for (const auto& [worker, quality] : expected.worker_quality) {
      EXPECT_EQ(got.worker_quality.at(worker), quality);
    }
  }
}

TEST(ParallelDeterminismTest, FaultyExecutionIdenticalAcrossThreadCounts) {
  // End-to-end seed sweep with the fault layer on: the fault schedule is
  // drawn from (seed, counter) streams and the platform interaction is
  // serial, so a whole faulty query run — PlatformStats byte dump and final
  // edge coloring included — must be bit-identical at every optimizer
  // thread count. Quality control + sampling exercise both parallel stages
  // (EM inference and the min-cut sampler).
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    std::string reference_stats;
    std::string reference_colors;
    for (int threads : kThreadCounts) {
      SimCrowdConfig config;
      config.seed = seed;
      config.quality_control = true;
      config.cost_method = CostMethod::kSampling;
      config.num_threads = threads;
      config.fault.abandon_prob = 0.3;
      config.fault.straggler_prob = 0.2;
      config.fault.straggler_delay_ticks = 5;
      config.fault.duplicate_prob = 0.1;
      config.fault.no_show_prob = 0.15;
      config.fault.task_deadline_ticks = 7;
      SimCrowdReport report = RunSimCrowd(config).value();
      for (const std::string& violation : report.violations) {
        ADD_FAILURE() << "seed " << seed << " threads " << threads << ": "
                      << violation;
      }
      if (threads == kThreadCounts.front()) {
        reference_stats = report.stats_dump;
        reference_colors = report.color_dump;
      } else {
        EXPECT_EQ(report.stats_dump, reference_stats)
            << "seed " << seed << " threads " << threads;
        EXPECT_EQ(report.color_dump, reference_colors)
            << "seed " << seed << " threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace cdb
