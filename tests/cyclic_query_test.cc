// End-to-end coverage of cyclic join structures (Section 5.1.1 "Graph Join
// Structure"): three tables joined in a triangle. The pruner's group graph
// is cyclic (arc consistency is a safe over-approximation), the chain
// transform breaks the cycle through a duplicated occurrence, and the
// executor must still return exactly the true triangles.
#include <gtest/gtest.h>

#include "bench_util/metrics.h"
#include "common/logging.h"
#include "cql/parser.h"
#include "exec/executor.h"
#include "graph/pruning.h"
#include "graph/structure.h"

namespace cdb {
namespace {

// Three tables A(x, y), B(x, z), C(y, z) with a triangle query:
//   A.x CROWDJOIN B.x AND A.y CROWDJOIN C.y AND B.z CROWDJOIN C.z.
// Entities: rows 0 of all tables form a true triangle; rows 1 form another;
// row 2 of A pairs with row 0 of B on x but its y matches nothing -> broken.
GeneratedDataset MakeTriangleDataset() {
  GeneratedDataset ds;
  auto add = [&](Table table) { CDB_CHECK(ds.catalog.AddTable(std::move(table)).ok()); };

  Table a("A", Schema({{"x", ValueType::kString, false},
                       {"y", ValueType::kString, false}}));
  CDB_CHECK(a.AppendRow({Value::Str("alpha key"), Value::Str("north gate")}).ok());
  CDB_CHECK(a.AppendRow({Value::Str("bravo key"), Value::Str("south gate")}).ok());
  CDB_CHECK(a.AppendRow({Value::Str("alpha keys"), Value::Str("lonely gate")}).ok());
  add(std::move(a));
  ds.entity_of[GeneratedDataset::ColumnKey("A", "x")] = {0, 1, 0};
  ds.entity_of[GeneratedDataset::ColumnKey("A", "y")] = {10, 11, kNoEntity};

  Table b("B", Schema({{"x", ValueType::kString, false},
                       {"z", ValueType::kString, false}}));
  CDB_CHECK(b.AppendRow({Value::Str("alpha key!"), Value::Str("red door")}).ok());
  CDB_CHECK(b.AppendRow({Value::Str("bravo key"), Value::Str("blue door")}).ok());
  add(std::move(b));
  ds.entity_of[GeneratedDataset::ColumnKey("B", "x")] = {0, 1};
  ds.entity_of[GeneratedDataset::ColumnKey("B", "z")] = {20, 21};

  Table c("C", Schema({{"y", ValueType::kString, false},
                       {"z", ValueType::kString, false}}));
  CDB_CHECK(c.AppendRow({Value::Str("north gates"), Value::Str("red doors")}).ok());
  CDB_CHECK(c.AppendRow({Value::Str("south gate"), Value::Str("blue door!")}).ok());
  add(std::move(c));
  ds.entity_of[GeneratedDataset::ColumnKey("C", "y")] = {10, 11};
  ds.entity_of[GeneratedDataset::ColumnKey("C", "z")] = {20, 21};
  return ds;
}

const char kTriangleQuery[] =
    "SELECT A.x FROM A, B, C "
    "WHERE A.x CROWDJOIN B.x AND A.y CROWDJOIN C.y AND B.z CROWDJOIN C.z";

class CyclicQueryTest : public ::testing::Test {
 protected:
  CyclicQueryTest() : dataset_(MakeTriangleDataset()) {
    Statement stmt = ParseStatement(kTriangleQuery).value();
    query_ = AnalyzeSelect(std::get<SelectStatement>(stmt), dataset_.catalog).value();
    truth_ = MakeEdgeTruth(&dataset_, &query_);
  }

  GeneratedDataset dataset_;
  ResolvedQuery query_;
  EdgeTruthFn truth_;
};

TEST_F(CyclicQueryTest, StructureIsCyclic) {
  QueryGraph graph = QueryGraph::Build(query_, GraphOptions{}).value();
  RelGraph rel_graph = BuildRelGraph(graph);
  EXPECT_EQ(Classify(rel_graph), JoinStructure::kCyclic);
  // The chain transform still covers every group.
  ChainPlan plan = BuildChainPlan(graph);
  EXPECT_EQ(plan.occ_group.size(), plan.occ_rel.size() - 1);
  Pruner pruner(&graph);
  EXPECT_FALSE(pruner.group_graph_acyclic());
}

TEST_F(CyclicQueryTest, TrueAnswersAreTheTwoTriangles) {
  std::vector<QueryAnswer> reference = TrueAnswers(dataset_, query_);
  ASSERT_EQ(reference.size(), 2u);
  EXPECT_EQ(reference[0].rows, (std::vector<int64_t>{0, 0, 0}));
  EXPECT_EQ(reference[1].rows, (std::vector<int64_t>{1, 1, 1}));
}

TEST_F(CyclicQueryTest, ExecutorFindsExactlyTheTriangles) {
  ExecutorOptions options;
  options.platform.worker_quality_mean = 1.0;
  options.platform.worker_quality_stddev = 0.0;
  options.platform.redundancy = 1;
  CdbExecutor executor(&query_, options, truth_);
  ExecutionResult result = executor.Run().value();
  PrecisionRecall pr = ComputeF1(result.answers, TrueAnswers(dataset_, query_));
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  // The broken A row 2 never completes a triangle.
  for (const QueryAnswer& answer : result.answers) {
    EXPECT_NE(answer.rows[0], 2);
  }
}

TEST_F(CyclicQueryTest, ExactValidityTighterThanArcConsistency) {
  // A.2's x-edge to B row 0 survives arc consistency only while its other
  // predicates hold; the exact check must agree or be stricter.
  QueryGraph graph = QueryGraph::Build(query_, GraphOptions{}).value();
  Pruner pruner(&graph);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (EdgeValidExact(graph, e)) {
      EXPECT_TRUE(pruner.EdgeValid(e)) << "AC must over-approximate, edge " << e;
    }
  }
}

}  // namespace
}  // namespace cdb
