// Property suite for the answer-propagation layer (label: propagate).
//
// MatchClusters unit properties pin the fact re-rooting contract (the
// er_join bug this PR fixes: non-match facts keyed at stale round-start
// roots); DeductionState properties check soundness, closure idempotence and
// observation-order independence against the entity ground truth; the
// end-to-end properties check that a noise-free oracle crowd makes
// propagation invisible in the final colors, that snapshots round-trip the
// (transient, rebuilt) deduction state mid-run, that runs are byte-identical
// across optimizer thread counts, and that the scheduler stops fanning
// shared answers out to sessions that already deduced the edge.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "bench_util/queries.h"
#include "common/random.h"
#include "bench_util/runner.h"
#include "bench_util/sim_crowd.h"
#include "cql/parser.h"
#include "datagen/award_dataset.h"
#include "datagen/mini_example.h"
#include "datagen/paper_dataset.h"
#include "exec/scheduler.h"
#include "graph/propagation.h"
#include "graph/query_graph.h"

namespace cdb {
namespace {

// --- MatchClusters: the union-find + cluster-level non-match facts. ---

TEST(MatchClustersTest, ReRootsNonMatchFactsWhenUnionMovesTheRoot) {
  // The er_join regression: a fact recorded against a cluster's root must
  // survive that cluster being absorbed into another (the old per-round
  // snapshot went stale here and KnownNonMatch missed deducible pairs).
  MatchClusters clusters(6);
  clusters.AddNonMatch(0, 3);
  clusters.Union(3, 4);  // 3's cluster re-roots or absorbs; the fact follows.
  EXPECT_TRUE(clusters.KnownNonMatch(0, 3));
  EXPECT_TRUE(clusters.KnownNonMatch(0, 4));
  clusters.Union(4, 5);
  EXPECT_TRUE(clusters.KnownNonMatch(0, 5));
  // And from the other endpoint's side.
  clusters.Union(0, 1);
  EXPECT_TRUE(clusters.KnownNonMatch(1, 5));
  EXPECT_FALSE(clusters.KnownNonMatch(1, 2));
}

TEST(MatchClustersTest, FactFollowsTheAbsorbedRootIntoTheLargerCluster) {
  // Force the absorption direction: {1,2} (size 2) absorbs {3} (size 1), so
  // the fact keyed at root 3 must be re-keyed onto {1,2}'s root.
  MatchClusters clusters(6);
  clusters.Union(1, 2);
  clusters.AddNonMatch(5, 3);
  clusters.Union(3, 1);
  EXPECT_TRUE(clusters.SameCluster(1, 3));
  EXPECT_TRUE(clusters.KnownNonMatch(5, 1));
  EXPECT_TRUE(clusters.KnownNonMatch(5, 2));
  EXPECT_TRUE(clusters.KnownNonMatch(5, 3));
}

TEST(MatchClustersTest, ConflictingEvidenceCountsAndMatchWins) {
  MatchClusters clusters(4);
  clusters.AddNonMatch(0, 1);
  EXPECT_EQ(clusters.conflicts(), 0);
  clusters.Union(0, 1);  // Contradicts the fact: match wins, fact dropped.
  EXPECT_EQ(clusters.conflicts(), 1);
  EXPECT_TRUE(clusters.SameCluster(0, 1));
  EXPECT_FALSE(clusters.KnownNonMatch(0, 1));
  clusters.AddNonMatch(0, 1);  // Same-cluster fact: conflict, not recorded.
  EXPECT_EQ(clusters.conflicts(), 2);
  EXPECT_FALSE(clusters.KnownNonMatch(0, 1));
}

TEST(MatchClustersTest, ClusterCountTracksUnions) {
  MatchClusters clusters(5);
  EXPECT_EQ(clusters.num_clusters(), 5);
  clusters.Union(0, 1);
  clusters.Union(2, 3);
  clusters.Union(1, 2);
  clusters.Union(0, 3);  // Already together: no change.
  EXPECT_EQ(clusters.num_clusters(), 2);
}

// --- DeductionState properties against entity ground truth. ---
//
// The paper-dataset 2J query gives a graph whose crowd edges follow entity
// clusters with duplicates, so transitive chains genuinely exist (the mini
// example is too sparse to deduce anything).

class DeductionPropertyTest : public ::testing::Test {
 protected:
  DeductionPropertyTest() {
    PaperDatasetOptions options;
    options.scale = 0.1;
    dataset_ = GeneratePaperDataset(options);
    const std::string cql = PaperQueries()[0].cql;  // 2J.
    Statement stmt = ParseStatement(cql).value();
    query_ = AnalyzeSelect(std::get<SelectStatement>(stmt), dataset_.catalog)
                 .value();
    graph_ = QueryGraph::Build(query_, GraphOptions()).value();
    truth_ = MakeEdgeTruth(&dataset_, &query_);
  }

  // The crowd edges a seed-dependent coin marks as "answered".
  std::vector<EdgeId> ObservedSubset(uint64_t seed) {
    Rng rng(seed);
    std::vector<EdgeId> observed;
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      if (graph_.edge(e).is_crowd && rng.Bernoulli(0.6)) observed.push_back(e);
    }
    return observed;
  }

  EdgeColor TruthColor(EdgeId e) {
    return truth_(graph_, e) ? EdgeColor::kBlue : EdgeColor::kRed;
  }

  GeneratedDataset dataset_;
  ResolvedQuery query_;
  QueryGraph graph_;
  EdgeTruthFn truth_;
};

TEST_F(DeductionPropertyTest, DeductionsAreSoundAgainstConsistentTruth) {
  // Observing any subset of truthful answers, every deducible color must
  // equal the ground truth: transitivity over true matches and
  // anti-transitivity over true non-matches can never contradict an
  // entity-consistent world.
  int64_t total_deduced = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    DeductionState deduction(&graph_);
    std::vector<EdgeId> observed = ObservedSubset(seed);
    std::vector<uint8_t> is_observed(graph_.num_edges(), 0);
    for (EdgeId e : observed) {
      deduction.Observe(e, TruthColor(e));
      is_observed[e] = 1;
    }
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      if (!graph_.edge(e).is_crowd || is_observed[e]) continue;
      EdgeColor deduced = deduction.Deduce(e);
      if (deduced == EdgeColor::kUnknown) continue;
      ++total_deduced;
      EXPECT_EQ(deduced, TruthColor(e)) << "seed " << seed << " edge " << e;
    }
    EXPECT_EQ(deduction.conflicts(), 0) << "seed " << seed;
  }
  // The property must not be vacuous: the chains exist and fire.
  EXPECT_GT(total_deduced, 0);
}

TEST_F(DeductionPropertyTest, OneSweepIsAFullClosure) {
  // Deduce() never feeds deduced colors back into the domains, so a second
  // sweep over the same state finds exactly the same set — closure in one
  // ascending pass, which is what StepColor relies on.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    DeductionState deduction(&graph_);
    for (EdgeId e : ObservedSubset(seed)) deduction.Observe(e, TruthColor(e));
    std::vector<EdgeColor> first;
    std::vector<EdgeColor> second;
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      first.push_back(deduction.Deduce(e));
    }
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      second.push_back(deduction.Deduce(e));
    }
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

TEST_F(DeductionPropertyTest, ObservationOrderDoesNotMatter) {
  // The partition and the fact set depend only on the observed edge SET when
  // the observations are mutually consistent — the property that justifies
  // rebuilding the transient deduction state in ascending edge order on
  // Restore() and after a late-answer flip.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::vector<EdgeId> observed = ObservedSubset(seed);

    DeductionState ascending(&graph_);
    for (EdgeId e : observed) ascending.Observe(e, TruthColor(e));

    std::vector<EdgeId> shuffled = observed;
    Rng rng(seed * 977);
    rng.Shuffle(shuffled);
    DeductionState permuted(&graph_);
    for (EdgeId e : shuffled) permuted.Observe(e, TruthColor(e));

    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      ASSERT_EQ(ascending.Deduce(e), permuted.Deduce(e))
          << "seed " << seed << " edge " << e;
    }
  }
}

TEST_F(DeductionPropertyTest, ResetForgetsEverything) {
  DeductionState deduction(&graph_);
  for (EdgeId e : ObservedSubset(1)) deduction.Observe(e, TruthColor(e));
  deduction.Reset();
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    EXPECT_EQ(deduction.Deduce(e), EdgeColor::kUnknown);
  }
}

// --- End-to-end properties through the executor. ---

TEST(PropagationExecutorTest, OracleCrowdMakesPropagationInvisible) {
  // With a noise-free crowd every deduced color equals what the crowd would
  // have answered, so propagation on/off must land on identical final colors
  // and identical query answers — only the task counts may differ.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SimCrowdConfig off;
    off.seed = seed;
    SimCrowdReport report_off = RunSimCrowd(off).value();

    SimCrowdConfig on = off;
    on.propagation.enabled = true;
    SimCrowdReport report_on = RunSimCrowd(on).value();

    EXPECT_EQ(report_off.color_dump, report_on.color_dump) << "seed " << seed;
    EXPECT_EQ(report_off.result.answers.size(),
              report_on.result.answers.size())
        << "seed " << seed;
    for (const std::string& violation : report_on.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation;
    }
    EXPECT_LE(report_on.result.stats.tasks_asked,
              report_off.result.stats.tasks_asked)
        << "seed " << seed;
  }
}

TEST(PropagationExecutorTest, PropagationOffIsByteIdenticalToLegacy) {
  // The off-path acceptance: a default-constructed PropagationOptions leaves
  // the executor byte-identical — same stats dump, same colors — to a run
  // that never heard of propagation (provenance bookkeeping is passive).
  for (uint64_t seed : {2u, 9u}) {
    SimCrowdConfig config;
    config.seed = seed;
    config.fault.straggler_prob = 0.4;
    config.fault.straggler_delay_ticks = 12;
    config.fault.task_deadline_ticks = 5;
    SimCrowdReport a = RunSimCrowd(config).value();
    SimCrowdReport b = RunSimCrowd(config).value();
    EXPECT_EQ(a.stats_dump, b.stats_dump);
    EXPECT_EQ(a.color_dump, b.color_dump);
  }
}

TEST(PropagationExecutorTest, ByteIdenticalAcrossThreadCountsWithPropagation) {
  // 1-vs-8-thread byte identity with the deduction layer on (plus EM quality
  // control and sampling min-cut, the two parallel optimizer stages).
  for (uint64_t seed : {1u, 7u}) {
    std::string reference_stats;
    std::string reference_colors;
    for (int threads : {1, 8}) {
      SimCrowdConfig config;
      config.seed = seed;
      config.quality_control = true;
      config.cost_method = CostMethod::kSampling;
      config.num_threads = threads;
      config.propagation.enabled = true;
      SimCrowdReport report = RunSimCrowd(config).value();
      if (reference_stats.empty()) {
        reference_stats = report.stats_dump;
        reference_colors = report.color_dump;
      } else {
        EXPECT_EQ(report.stats_dump, reference_stats)
            << "seed " << seed << " threads " << threads;
        EXPECT_EQ(report.color_dump, reference_colors)
            << "seed " << seed << " threads " << threads;
      }
    }
  }
}

TEST(PropagationExecutorTest, TransBaselineIsExactOnOracleCrowd) {
  // Satellite regression for the shared MatchClusters: the Trans baseline
  // leans on KnownNonMatch between rounds, so a stale (pre-fix) fact table
  // would either re-ask deducible pairs or miscolor them. With a perfect
  // crowd its F1 must be exact.
  PaperDatasetOptions options;
  options.scale = 0.1;
  GeneratedDataset dataset = GeneratePaperDataset(options);
  RunConfig config;
  config.worker_quality = 1.0;
  config.worker_quality_stddev = 0.0;
  config.repetitions = 1;
  config.num_threads = 1;
  RunOutcome outcome =
      RunMethod(Method::kTrans, dataset, PaperQueries()[0].cql, config)
          .value();
  EXPECT_DOUBLE_EQ(outcome.f1, 1.0);
}

// --- Snapshot round-trip with live deduction state. ---

class PropagationSnapshotTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  PropagationSnapshotTest()
      : dataset_(MakeMiniPaperExample()),
        query_(AnalyzeSelect(
                   std::get<SelectStatement>(
                       ParseStatement(kMiniExampleQuery).value()),
                   dataset_.catalog)
                   .value()),
        truth_(MakeEdgeTruth(&dataset_, &query_)) {}

  ExecutorOptions Options() const {
    ExecutorOptions options;
    options.platform.seed = GetParam();
    options.platform.redundancy = 3;
    options.propagation.enabled = true;
    FaultProfile& fault = options.platform.fault;
    fault.straggler_prob = 0.3;
    fault.straggler_delay_ticks = 10;
    fault.task_deadline_ticks = 5;
    fault.abandon_prob = 0.15;
    return options;
  }

  static std::string Colors(const QuerySession& session) {
    std::string out;
    for (EdgeId e = 0; e < session.graph().num_edges(); ++e) {
      switch (session.graph().edge(e).color) {
        case EdgeColor::kBlue:
          out += 'B';
          break;
        case EdgeColor::kRed:
          out += 'R';
          break;
        default:
          out += '?';
          break;
      }
      out += static_cast<char>(
          '0' + static_cast<int>(session.edge_provenance(e)));
    }
    return out;
  }

  GeneratedDataset dataset_;
  ResolvedQuery query_;
  EdgeTruthFn truth_;
};

TEST_P(PropagationSnapshotTest, MidRunRoundTripRebuildsDeductionState) {
  // Snapshot a propagation-on session mid-run (deduction domains live),
  // restore into a fresh session, and finish both: the blob must round-trip
  // byte-exactly and the restored session must converge to the same colors
  // AND the same provenance — proof the transient deduction state was
  // rebuilt, not lost.
  const int steps = static_cast<int>(GetParam() % 13);
  QuerySession original(&query_, Options(), truth_);
  for (int s = 0; s < steps; ++s) {
    Result<bool> more = original.Step();
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!more.value()) break;
  }
  const std::string blob = original.Snapshot();

  QuerySession restored(&query_, Options(), truth_);
  Status status = restored.Restore(blob);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(blob, restored.Snapshot());

  auto finish = [](QuerySession& session) {
    while (true) {
      Result<bool> more = session.Step();
      ASSERT_TRUE(more.ok()) << more.status().ToString();
      if (!more.value()) break;
    }
  };
  finish(original);
  finish(restored);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(Colors(original), Colors(restored));
  EXPECT_EQ(original.TakeResult().answers.size(),
            restored.TakeResult().answers.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationSnapshotTest,
                         ::testing::Range<uint64_t>(1, 14));

// --- Scheduler: deduced edges cancel pending shared fan-out. ---

TEST(PropagationSchedulerTest, DeducedEdgesSuppressSharedAnswerFanout) {
  // Two sessions run the same award 2J query on a straggler-heavy shared
  // platform (retries off, one expiry allowed) with propagation on: whole
  // tasks starve past the deadline, their edges get deduced from the asked
  // neighbors, and the straggling answers — arriving whole rounds later —
  // must then be dropped at the fan-out (counted once per task under
  // scheduler.dedup_tasks_saved) instead of delivered. The reconcile flips
  // from the answers that DO land also drive the invalidate-and-rederive
  // path, so its counter must fire too.
  AwardDatasetOptions dataset_options;
  dataset_options.scale = 0.1;
  GeneratedDataset dataset = GenerateAwardDataset(dataset_options);
  const std::string cql = AwardQueries()[0].cql;
  Statement stmt = ParseStatement(cql).value();
  ResolvedQuery query =
      AnalyzeSelect(std::get<SelectStatement>(stmt), dataset.catalog).value();
  EdgeTruthFn truth = MakeEdgeTruth(&dataset, &query);

  int64_t total_saved = 0;
  int64_t total_deduced = 0;
  int64_t total_invalidations = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    MultiQueryOptions mq;
    mq.platform.seed = seed;
    mq.platform.redundancy = 3;
    mq.platform.fault.straggler_prob = 0.5;
    mq.platform.fault.straggler_delay_ticks = 40;
    mq.platform.fault.task_deadline_ticks = 3;
    mq.platform.fault.max_task_expiries = 1;
    MultiQueryScheduler scheduler(mq);
    ExecutorOptions options;
    options.num_threads = 1;
    options.graph.num_threads = 1;
    options.propagation.enabled = true;
    options.retry.enabled = false;
    scheduler.AddQuery(&query, options, truth);
    scheduler.AddQuery(&query, options, truth);
    Result<std::vector<ExecutionResult>> results = scheduler.RunAll();
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    total_saved += scheduler.stats().dedup_tasks_saved;
    for (const ExecutionResult& result : results.value()) {
      total_deduced += result.stats.deduced_edges;
      total_invalidations += result.stats.deduction_invalidations;
    }
  }
  // The mechanisms fired: edges were deduced, flips invalidated and
  // re-derived deductions, and pending shared answer streams were cancelled
  // by deduced colors.
  EXPECT_GT(total_deduced, 0);
  EXPECT_GT(total_invalidations, 0);
  EXPECT_GT(total_saved, 0);
}

TEST(PropagationSchedulerTest, SuppressedFanoutRunsAreDeterministic) {
  // Same hostile configuration as above, run twice: the skip bookkeeping is
  // part of the decision path, so the whole multi-query run must stay
  // byte-reproducible.
  AwardDatasetOptions dataset_options;
  dataset_options.scale = 0.1;
  GeneratedDataset dataset = GenerateAwardDataset(dataset_options);
  const std::string cql = AwardQueries()[0].cql;
  Statement stmt = ParseStatement(cql).value();
  ResolvedQuery query =
      AnalyzeSelect(std::get<SelectStatement>(stmt), dataset.catalog).value();
  EdgeTruthFn truth = MakeEdgeTruth(&dataset, &query);

  std::vector<std::string> dumps;
  for (int repeat = 0; repeat < 2; ++repeat) {
    MultiQueryOptions mq;
    mq.platform.seed = 5;
    mq.platform.redundancy = 3;
    mq.platform.fault.straggler_prob = 0.5;
    mq.platform.fault.straggler_delay_ticks = 40;
    mq.platform.fault.task_deadline_ticks = 3;
    mq.platform.fault.max_task_expiries = 1;
    MultiQueryScheduler scheduler(mq);
    ExecutorOptions options;
    options.num_threads = 1;
    options.graph.num_threads = 1;
    options.propagation.enabled = true;
    options.retry.enabled = false;
    scheduler.AddQuery(&query, options, truth);
    scheduler.AddQuery(&query, options, truth);
    Result<std::vector<ExecutionResult>> results = scheduler.RunAll();
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    std::string dump = PlatformStatsDump(scheduler.platform_stats());
    dump += "\nsaved=" + std::to_string(scheduler.stats().dedup_tasks_saved);
    for (size_t i = 0; i < scheduler.num_sessions(); ++i) {
      const QueryGraph& graph = scheduler.session(i).graph();
      for (EdgeId e = 0; e < graph.num_edges(); ++e) {
        dump += static_cast<char>('0' + static_cast<int>(graph.edge(e).color));
      }
    }
    dumps.push_back(std::move(dump));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

}  // namespace
}  // namespace cdb
