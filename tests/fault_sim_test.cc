// Deterministic simulation tests for the unreliable-crowd stack (label:
// fault). Platform-level DST sweeps seeds over a hostile FaultProfile and
// checks the lease conservation laws; executor-level sweeps run whole
// queries through SimCrowd and assert termination, budget bounds and
// byte-identical reruns across thread counts.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_util/metrics.h"
#include "bench_util/sim_crowd.h"
#include "cql/parser.h"
#include "crowd/platform.h"
#include "datagen/mini_example.h"
#include "exec/scheduler.h"

namespace cdb {
namespace {

Task YesNoTask(TaskId id) {
  Task task;
  task.id = id;
  task.type = TaskType::kSingleChoice;
  task.question = "match?";
  task.choices = {"yes", "no"};
  task.payload = id;
  return task;
}

TruthProvider AlwaysYes() {
  return [](const Task&) {
    TaskTruth truth;
    truth.correct_choice = 0;
    return truth;
  };
}

// The ISSUE's hostile profile: a third of leases abandoned, stragglers,
// duplicated answers and no-shows, under a tight deadline.
FaultProfile HostileProfile() {
  FaultProfile fault;
  fault.abandon_prob = 0.3;
  fault.straggler_prob = 0.2;
  fault.straggler_delay_ticks = 6;
  fault.duplicate_prob = 0.1;
  fault.no_show_prob = 0.2;
  fault.task_deadline_ticks = 8;
  fault.max_task_expiries = 6;
  return fault;
}

void CheckConservation(const PlatformStats& stats) {
  EXPECT_EQ(stats.leases_granted,
            (stats.answers_collected - stats.duplicates) + stats.abandons +
                stats.late_answers)
      << PlatformStatsDump(stats);
  EXPECT_LE(stats.expiries, stats.abandons + stats.late_answers)
      << PlatformStatsDump(stats);
  // Exact integer pricing: micro-dollars are a pure function of HITs.
  EXPECT_EQ(stats.micro_dollars_spent, stats.hits_published * 100000);
}

TEST(FaultDstTest, TwentySeedConservationSweep) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    PlatformOptions options;
    options.seed = seed;
    options.redundancy = 3;
    options.num_workers = 25;
    options.fault = HostileProfile();
    CrowdPlatform platform(options, AlwaysYes());
    std::vector<Task> tasks;
    for (int i = 0; i < 15; ++i) tasks.push_back(YesNoTask(i));

    Result<std::vector<Answer>> round = platform.ExecuteRound(tasks);
    ASSERT_TRUE(round.ok()) << "seed " << seed << ": "
                            << round.status().message();
    CheckConservation(platform.stats());

    // Every task the platform did not give up on reached redundancy with
    // distinct workers.
    std::set<TaskId> dead;
    for (TaskId t : platform.TakeDeadLetters()) dead.insert(t);
    std::map<TaskId, std::set<int>> workers_per_task;
    for (const Answer& a : round.value()) {
      EXPECT_FALSE(a.late);
      workers_per_task[a.task].insert(a.worker);
    }
    for (const Task& task : tasks) {
      if (dead.count(task.id) != 0) continue;
      EXPECT_GE(workers_per_task[task.id].size(), 3u)
          << "seed " << seed << " task " << task.id;
    }

    // Late answers carry the flag and are counted exactly once.
    std::vector<Answer> late = platform.TakeLateAnswers();
    EXPECT_EQ(static_cast<int64_t>(late.size()),
              platform.stats().late_answers);
    for (const Answer& a : late) EXPECT_TRUE(a.late);
  }
}

TEST(FaultDstTest, SameSeedSameSchedule) {
  // The entire fault schedule must be a pure function of the seed: two
  // platforms with identical options produce byte-identical stats and
  // answer streams.
  for (uint64_t seed : {3u, 17u}) {
    PlatformOptions options;
    options.seed = seed;
    options.redundancy = 3;
    options.num_workers = 20;
    options.fault = HostileProfile();
    std::vector<Task> tasks;
    for (int i = 0; i < 10; ++i) tasks.push_back(YesNoTask(i));

    CrowdPlatform a(options, AlwaysYes());
    CrowdPlatform b(options, AlwaysYes());
    std::vector<Answer> answers_a = a.ExecuteRound(tasks).value();
    std::vector<Answer> answers_b = b.ExecuteRound(tasks).value();
    ASSERT_EQ(answers_a.size(), answers_b.size());
    for (size_t i = 0; i < answers_a.size(); ++i) {
      EXPECT_EQ(answers_a[i].task, answers_b[i].task);
      EXPECT_EQ(answers_a[i].worker, answers_b[i].worker);
      EXPECT_EQ(answers_a[i].tick, answers_b[i].tick);
    }
    EXPECT_EQ(PlatformStatsDump(a.stats()), PlatformStatsDump(b.stats()));
  }
}

TEST(FaultDstTest, StatsPersistAcrossRounds) {
  PlatformOptions options;
  options.seed = 9;
  options.redundancy = 2;
  options.num_workers = 15;
  options.fault = HostileProfile();
  CrowdPlatform platform(options, AlwaysYes());
  ASSERT_TRUE(platform.ExecuteRound({YesNoTask(0), YesNoTask(1)}).ok());
  int64_t leases_after_one = platform.stats().leases_granted;
  ASSERT_TRUE(platform.ExecuteRound({YesNoTask(2), YesNoTask(3)}).ok());
  EXPECT_GT(platform.stats().leases_granted, leases_after_one);
  CheckConservation(platform.stats());
}

TEST(FaultDstTest, MultiMarketConservesAcrossMarkets) {
  PlatformOptions a;
  a.seed = 4;
  a.redundancy = 2;
  a.num_workers = 12;
  a.fault = HostileProfile();
  PlatformOptions b = a;
  b.seed = 5;
  b.market_name = "SimCrowdFlower";
  b.requester_controls_assignment = false;
  MultiMarket market({a, b}, AlwaysYes());
  std::vector<Task> tasks;
  for (int i = 0; i < 12; ++i) tasks.push_back(YesNoTask(i));
  ASSERT_TRUE(market.ExecuteRound(tasks).ok());
  CheckConservation(market.CombinedStats());
  // Late answers from the second market carry the worker-id offset.
  for (const Answer& late : market.TakeLateAnswers()) {
    EXPECT_TRUE(late.late);
    EXPECT_GE(late.worker, 0);
  }
}

// --- Executor-level DST: whole queries through SimCrowd. ---

TEST(SimCrowdTest, CleanRunHasNoViolations) {
  SimCrowdConfig config;
  config.seed = 2;
  SimCrowdReport report = RunSimCrowd(config).value();
  EXPECT_TRUE(report.violations.empty())
      << report.violations.front() << " (+" << report.violations.size() - 1
      << " more)";
  EXPECT_GT(report.result.answers.size(), 0u);
  EXPECT_EQ(report.result.stats.reposted_tasks, 0);
  EXPECT_EQ(report.result.stats.late_answers, 0);
}

TEST(SimCrowdTest, TwentySeedHostileSweepCompletesEveryQuery) {
  // The ISSUE's acceptance sweep: abandonment 0.3 + stragglers, 20 seeds;
  // every query must run to completion (no abort) with all invariants
  // intact.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SimCrowdConfig config;
    config.seed = seed;
    config.fault = HostileProfile();
    Result<SimCrowdReport> report = RunSimCrowd(config);
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                             << report.status().message();
    for (const std::string& violation : report->violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation;
    }
  }
}

TEST(SimCrowdTest, BudgetIsNeverExceededUnderFaults) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SimCrowdConfig config;
    config.seed = seed;
    config.fault = HostileProfile();
    config.budget = 12;
    SimCrowdReport report = RunSimCrowd(config).value();
    for (const std::string& violation : report.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation;
    }
    const PlatformStats& ps = report.result.stats.platform;
    EXPECT_LE(ps.tasks_published, 12) << "seed " << seed;
    EXPECT_LE(ps.micro_dollars_spent, 12 * 100000) << "seed " << seed;
  }
}

TEST(SimCrowdTest, RetryDisabledStillTerminates) {
  // Without requester-side reposts the platform's own repost/dead-letter
  // machinery must still finish the round; fallback coloring covers any
  // edge whose task starved.
  SimCrowdConfig config;
  config.seed = 6;
  config.fault = HostileProfile();
  config.retry.enabled = false;
  SimCrowdReport report = RunSimCrowd(config).value();
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
}

TEST(SimCrowdTest, QualityControlPathSurvivesFaults) {
  SimCrowdConfig config;
  config.seed = 8;
  config.fault = HostileProfile();
  config.quality_control = true;
  config.worker_quality_mean = 0.85;
  config.worker_quality_stddev = 0.05;
  SimCrowdReport report = RunSimCrowd(config).value();
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
}

TEST(SimCrowdTest, SameSeedByteIdenticalAcrossThreadCounts) {
  // The ISSUE's determinism acceptance: two same-seed runs byte-identical
  // at 1 and 8 optimizer threads (EM inference + sampling min-cut are the
  // parallel stages; the platform interaction is serial by design).
  for (uint64_t seed : {1u, 7u, 13u}) {
    std::string reference_stats;
    std::string reference_colors;
    for (int threads : {1, 8}) {
      for (int repeat = 0; repeat < 2; ++repeat) {
        SimCrowdConfig config;
        config.seed = seed;
        config.fault = HostileProfile();
        config.quality_control = true;
        config.cost_method = CostMethod::kSampling;
        config.num_threads = threads;
        SimCrowdReport report = RunSimCrowd(config).value();
        if (reference_stats.empty()) {
          reference_stats = report.stats_dump;
          reference_colors = report.color_dump;
        } else {
          EXPECT_EQ(report.stats_dump, reference_stats)
              << "seed " << seed << " threads " << threads;
          EXPECT_EQ(report.color_dump, reference_colors)
              << "seed " << seed << " threads " << threads;
        }
      }
    }
  }
}

TEST(SimCrowdTest, LateAnswerAfterPruningDoesNotResurrectEdges) {
  // Regression for the RecolorEdge audit: an extreme straggler profile makes
  // late answers land whole rounds after the pruner has already acted on the
  // early deliveries. Reconciliation may flip a colored edge, but an answer
  // for an edge the pruner skipped (still kUnknown, or a traditional
  // predicate) must be dropped, never resurrect it into the crowd set. The
  // color-integrity invariant in RunSimCrowd observes exactly that.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SimCrowdConfig config;
    config.seed = seed;
    config.fault.straggler_prob = 0.6;
    config.fault.straggler_delay_ticks = 30;
    config.fault.task_deadline_ticks = 4;
    config.fault.abandon_prob = 0.1;
    SimCrowdReport report = RunSimCrowd(config).value();
    for (const std::string& violation : report.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation;
    }
    // The profile must actually exercise the late path, and reruns must be
    // byte-identical (reconciliation is deterministic).
    if (seed == 1) {
      SimCrowdReport rerun = RunSimCrowd(config).value();
      EXPECT_EQ(rerun.stats_dump, report.stats_dump);
      EXPECT_EQ(rerun.color_dump, report.color_dump);
    }
  }
}

TEST(SimCrowdTest, HostileSweepProducesLateAnswers) {
  // Sanity for the regression above: the straggler-heavy profile does push
  // answers past the deadline, so the reconciliation path is genuinely
  // covered rather than vacuously green.
  int64_t total_late = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SimCrowdConfig config;
    config.seed = seed;
    config.fault.straggler_prob = 0.6;
    config.fault.straggler_delay_ticks = 30;
    config.fault.task_deadline_ticks = 4;
    config.fault.abandon_prob = 0.1;
    SimCrowdReport report = RunSimCrowd(config).value();
    total_late += report.result.stats.platform.late_answers;
  }
  EXPECT_GT(total_late, 0);
}

TEST(SimCrowdTest, PropagationStaysClusterConsistentUnderHostileCrowd) {
  // Satellite regression for the invalidate-and-rederive path: under the
  // hostile profile late answers promote and flip crowd-evidenced edges
  // after deductions were made from them. ReconcileLate must rebuild the
  // closure, so RunSimCrowd's cluster-consistency sweep (active here: the
  // crowd is noise-free, so asked colors are mutually consistent) must find
  // no pair that is both matched and non-matched, on top of every standing
  // invariant — and reruns must stay byte-identical.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SimCrowdConfig config;
    config.seed = seed;
    config.fault = HostileProfile();
    config.propagation.enabled = true;
    Result<SimCrowdReport> report = RunSimCrowd(config);
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                             << report.status().message();
    for (const std::string& violation : report->violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation;
    }
    if (seed == 1) {
      SimCrowdReport rerun = RunSimCrowd(config).value();
      EXPECT_EQ(rerun.stats_dump, report->stats_dump);
      EXPECT_EQ(rerun.color_dump, report->color_dump);
    }
  }
}

TEST(SimCrowdTest, PropagationSurvivesExtremeStragglers) {
  // The straggler-heavy late-answer profile with the deduction layer on:
  // flips may orphan deduced colors whole rounds after they were derived;
  // the terminal reconcile must still leave every valid edge colored and
  // the clusters consistent.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SimCrowdConfig config;
    config.seed = seed;
    config.fault.straggler_prob = 0.6;
    config.fault.straggler_delay_ticks = 30;
    config.fault.task_deadline_ticks = 4;
    config.fault.abandon_prob = 0.1;
    config.propagation.enabled = true;
    SimCrowdReport report = RunSimCrowd(config).value();
    for (const std::string& violation : report.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation;
    }
  }
}

TEST(SimCrowdTest, StatsDumpIsStableFormat) {
  SimCrowdConfig config;
  config.seed = 3;
  SimCrowdReport report = RunSimCrowd(config).value();
  EXPECT_NE(report.stats_dump.find("tasks_published="), std::string::npos);
  EXPECT_NE(report.stats_dump.find("leases_granted="), std::string::npos);
  EXPECT_NE(report.color_dump.find("0="), std::string::npos);
}

// The merge barrier under a hostile crowd: N sessions sharing one faulty
// platform still satisfy every conservation law, finish every query, and the
// whole run is byte-identical across optimizer thread counts. (The
// single-session hostile path is covered above and in session_test.cc; this
// closes the scheduler-shaped gap.)
TEST(FaultDstTest, SchedulerUnderHostileCrowdConservesAndIsDeterministic) {
  GeneratedDataset dataset = MakeMiniPaperExample();
  Statement stmt = ParseStatement(kMiniExampleQuery).value();
  ResolvedQuery query =
      AnalyzeSelect(std::get<SelectStatement>(stmt), dataset.catalog).value();
  EdgeTruthFn truth = MakeEdgeTruth(&dataset, &query);

  std::map<int, std::string> dumps;
  for (int threads : {1, 8}) {
    MultiQueryOptions mq;
    mq.platform.seed = 77;
    mq.platform.worker_quality_mean = 0.85;
    mq.platform.redundancy = 3;
    mq.platform.fault = HostileProfile();
    MultiQueryScheduler scheduler(mq);
    ExecutorOptions options;
    options.num_threads = threads;
    options.graph.num_threads = threads;
    ASSERT_EQ(scheduler.AddQuery(&query, options, truth), 0u);
    ASSERT_EQ(scheduler.AddQuery(&query, options, truth), 1u);
    Result<std::vector<ExecutionResult>> results = scheduler.RunAll();
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    ASSERT_EQ(results.value().size(), 2u);
    CheckConservation(scheduler.platform_stats());

    std::string dump = PlatformStatsDump(scheduler.platform_stats());
    for (size_t i = 0; i < results.value().size(); ++i) {
      const ExecutionStats& stats = results.value()[i].stats;
      dump += "\nsession" + std::to_string(i) +
              ": rounds=" + std::to_string(stats.rounds) +
              " tasks=" + std::to_string(stats.tasks_asked) +
              " answers=" + std::to_string(stats.worker_answers) +
              " late=" + std::to_string(stats.late_answers) +
              " reposted=" + std::to_string(stats.reposted_tasks) +
              " results=" + std::to_string(results.value()[i].answers.size());
    }
    dumps[threads] = dump;
    // Hostile faults actually fired — the run was not accidentally clean.
    EXPECT_GT(scheduler.platform_stats().abandons +
                  scheduler.platform_stats().late_answers +
                  scheduler.platform_stats().expiries,
              0);
  }
  EXPECT_EQ(dumps[1], dumps[8]);
}

}  // namespace
}  // namespace cdb
