#include <gtest/gtest.h>

#include "bench_util/metrics.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"
#include "exec/executor.h"
#include "graph/pruning.h"
#include "tests/test_util.h"

namespace cdb {
namespace {

ResolvedQuery Resolve(const GeneratedDataset& ds, const std::string& cql) {
  Statement stmt = ParseStatement(cql).value();
  return AnalyzeSelect(std::get<SelectStatement>(stmt), ds.catalog).value();
}

ExecutorOptions PerfectCrowd(uint64_t seed = 3) {
  ExecutorOptions options;
  options.platform.worker_quality_mean = 1.0;
  options.platform.worker_quality_stddev = 0.0;
  options.platform.redundancy = 1;
  options.platform.seed = seed;
  return options;
}

class ExecutorMiniTest : public ::testing::Test {
 protected:
  ExecutorMiniTest()
      : dataset_(MakeMiniPaperExample()),
        query_(Resolve(dataset_, kMiniExampleQuery)),
        truth_(MakeEdgeTruth(&dataset_, &query_)) {}

  GeneratedDataset dataset_;
  ResolvedQuery query_;
  EdgeTruthFn truth_;
};

TEST_F(ExecutorMiniTest, PerfectCrowdFindsExactlyTrueAnswers) {
  CdbExecutor executor(&query_, PerfectCrowd(), truth_);
  ExecutionResult result = executor.Run().value();

  // With perfect workers the returned tuples must coincide with the
  // graph-reachable subset of the truth: precision 1.
  std::vector<QueryAnswer> reference = TrueAnswers(dataset_, query_);
  PrecisionRecall pr = ComputeF1(result.answers, reference);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_GT(result.answers.size(), 0u);
  EXPECT_GT(result.stats.tasks_asked, 0);
  EXPECT_GT(result.stats.rounds, 0);
}

TEST_F(ExecutorMiniTest, NoUncoloredValidEdgesRemain) {
  CdbExecutor executor(&query_, PerfectCrowd(), truth_);
  executor.Run().value();
  // Algorithm-1 termination: every remaining unknown edge must be invalid.
  const QueryGraph& graph = executor.graph();
  Pruner pruner(const_cast<QueryGraph*>(&graph));
  EXPECT_TRUE(pruner.RemainingTasks().empty());
}

TEST_F(ExecutorMiniTest, AsksFewerTasksThanEdges) {
  CdbExecutor executor(&query_, PerfectCrowd(), truth_);
  ExecutionResult result = executor.Run().value();
  // Tuple-level pruning must save something on the mini example.
  EXPECT_LT(result.stats.tasks_asked, executor.graph().num_edges());
}

TEST_F(ExecutorMiniTest, RoundSizesSumToTasks) {
  CdbExecutor executor(&query_, PerfectCrowd(), truth_);
  ExecutionResult result = executor.Run().value();
  int64_t sum = 0;
  for (int64_t size : result.stats.round_sizes) sum += size;
  EXPECT_EQ(sum, result.stats.tasks_asked);
  EXPECT_EQ(static_cast<int64_t>(result.stats.round_sizes.size()),
            result.stats.rounds);
}

TEST_F(ExecutorMiniTest, SamplingMethodAlsoCompletes) {
  ExecutorOptions options = PerfectCrowd();
  options.cost_method = CostMethod::kSampling;
  options.sampling_samples = 25;
  CdbExecutor executor(&query_, options, truth_);
  ExecutionResult result = executor.Run().value();
  PrecisionRecall pr = ComputeF1(result.answers, TrueAnswers(dataset_, query_));
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
}

TEST_F(ExecutorMiniTest, CdbPlusRunsQualityControl) {
  ExecutorOptions options;
  options.quality_control = true;
  options.platform.worker_quality_mean = 0.85;
  options.platform.redundancy = 5;
  options.platform.seed = 11;
  CdbExecutor executor(&query_, options, truth_);
  ExecutionResult result = executor.Run().value();
  EXPECT_GT(result.stats.worker_answers, result.stats.tasks_asked);
}

TEST_F(ExecutorMiniTest, RoundLimitFlushes) {
  ExecutorOptions options = PerfectCrowd();
  options.round_limit = 2;
  CdbExecutor executor(&query_, options, truth_);
  ExecutionResult result = executor.Run().value();
  EXPECT_LE(result.stats.rounds, 2);
  // Flushing in round 2 must still finish the query: no valid unknowns left.
  Pruner pruner(const_cast<QueryGraph*>(&executor.graph()));
  EXPECT_TRUE(pruner.RemainingTasks().empty());
}

TEST_F(ExecutorMiniTest, RoundLimitOneAsksEverythingValid) {
  ExecutorOptions options = PerfectCrowd();
  options.round_limit = 1;
  CdbExecutor executor(&query_, options, truth_);
  ExecutionResult one = executor.Run().value();
  ExecutorOptions unconstrained = PerfectCrowd();
  CdbExecutor executor2(&query_, unconstrained, truth_);
  ExecutionResult free_run = executor2.Run().value();
  // A 1-round flush cannot ask fewer tasks than the multi-round optimum.
  EXPECT_GE(one.stats.tasks_asked, free_run.stats.tasks_asked);
  EXPECT_EQ(one.stats.rounds, 1);
}

TEST_F(ExecutorMiniTest, BudgetModeRespectsBudget) {
  ExecutorOptions options = PerfectCrowd();
  options.budget = 5;
  CdbExecutor executor(&query_, options, truth_);
  ExecutionResult result = executor.Run().value();
  EXPECT_LE(result.stats.tasks_asked, 5);
}

TEST_F(ExecutorMiniTest, BudgetRecallGrowsWithBudget) {
  std::vector<QueryAnswer> reference = TrueAnswers(dataset_, query_);
  double small_recall = 0.0;
  double large_recall = 0.0;
  {
    ExecutorOptions options = PerfectCrowd();
    options.budget = 3;
    CdbExecutor executor(&query_, options, truth_);
    small_recall = ComputeF1(executor.Run().value().answers, reference).recall;
  }
  {
    ExecutorOptions options = PerfectCrowd();
    options.budget = 60;
    CdbExecutor executor(&query_, options, truth_);
    large_recall = ComputeF1(executor.Run().value().answers, reference).recall;
  }
  EXPECT_GE(large_recall, small_recall);
  EXPECT_GT(large_recall, 0.0);
}

TEST_F(ExecutorMiniTest, SelectionQueryWorks) {
  ResolvedQuery query = Resolve(dataset_,
                                "SELECT University.name FROM University "
                                "WHERE University.country CROWDEQUAL 'USA'");
  EdgeTruthFn truth = MakeEdgeTruth(&dataset_, &query);
  CdbExecutor executor(&query, PerfectCrowd(), truth);
  ExecutionResult result = executor.Run().value();
  // 11 of the 12 universities are in the USA ("US"/"USA" variants).
  PrecisionRecall pr = ComputeF1(result.answers, TrueAnswers(dataset_, query));
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_EQ(result.answers.size(), 11u);
}

TEST_F(ExecutorMiniTest, MixedCrowdAndTraditionalPredicates) {
  ResolvedQuery query = Resolve(dataset_,
                                "SELECT Paper.title FROM Paper, Citation "
                                "WHERE Paper.title CROWDJOIN Citation.title "
                                "AND Paper.conference = 'sigmod14'");
  EdgeTruthFn truth = MakeEdgeTruth(&dataset_, &query);
  CdbExecutor executor(&query, PerfectCrowd(), truth);
  ExecutionResult result = executor.Run().value();
  // Papers p5 and p7 are sigmod14; p5's citation c7 matches; p7's real
  // citation c9 matches.
  EXPECT_GE(result.answers.size(), 1u);
  for (const QueryAnswer& answer : result.answers) {
    int64_t paper_row = answer.rows[0];
    EXPECT_TRUE(paper_row == 4 || paper_row == 6);
  }
}

TEST(ExecutorSyntheticTest, NoisyCrowdDegradesGracefully) {
  // With a mediocre crowd some answers will be wrong, but execution still
  // terminates and returns a result.
  GeneratedDataset ds = MakeMiniPaperExample();
  ResolvedQuery query = Resolve(ds, kMiniExampleQuery);
  EdgeTruthFn truth = MakeEdgeTruth(&ds, &query);
  ExecutorOptions options;
  options.platform.worker_quality_mean = 0.6;
  options.platform.redundancy = 3;
  options.platform.seed = 21;
  CdbExecutor executor(&query, options, truth);
  ExecutionResult result = executor.Run().value();
  EXPECT_GT(result.stats.tasks_asked, 0);
}

}  // namespace
}  // namespace cdb
