#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>

#include "cost/expectation.h"
#include "graph/candidates.h"
#include "latency/scheduler.h"
#include "tests/test_util.h"

namespace cdb {
namespace {

std::vector<EdgeId> OrderedTasks(const QueryGraph& graph, Pruner& pruner) {
  std::vector<EdgeId> out;
  for (const ScoredEdge& se : ExpectationOrder(graph, const_cast<Pruner&>(pruner))) {
    out.push_back(se.edge);
  }
  return out;
}

TEST(LatencyTest, ComponentsSeparateDisconnectedParts) {
  // Two disjoint single-edge components.
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}};
  std::vector<QueryGraph::SyntheticEdge> edges = {{0, 0, 0, 0.5}, {0, 1, 1, 0.5}};
  QueryGraph graph = QueryGraph::MakeSynthetic(2, preds, edges);
  Pruner pruner(&graph);
  std::vector<int> components = ValidComponents(graph, pruner);
  EXPECT_NE(components[0], -1);
  // Endpoints of edge 0 share a component; edge 1's endpoints are in another.
  EXPECT_EQ(components[graph.edge(0).u], components[graph.edge(0).v]);
  EXPECT_EQ(components[graph.edge(1).u], components[graph.edge(1).v]);
  EXPECT_NE(components[graph.edge(0).u], components[graph.edge(1).u]);
}

TEST(LatencyTest, DeadVerticesHaveNoComponent) {
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}};
  std::vector<QueryGraph::SyntheticEdge> edges = {
      {0, 0, 0, 0.5, true, EdgeColor::kRed}, {0, 1, 1, 0.5}};
  QueryGraph graph = QueryGraph::MakeSynthetic(2, preds, edges);
  Pruner pruner(&graph);
  std::vector<int> components = ValidComponents(graph, pruner);
  EXPECT_EQ(components[graph.edge(0).u], -1);
  EXPECT_NE(components[graph.edge(1).u], -1);
}

TEST(LatencyTest, DisjointEdgesAskedTogether) {
  std::vector<PredicateInfo> preds = {{true, false, 0, 1}};
  std::vector<QueryGraph::SyntheticEdge> edges = {{0, 0, 0, 0.5}, {0, 1, 1, 0.5}};
  QueryGraph graph = QueryGraph::MakeSynthetic(2, preds, edges);
  Pruner pruner(&graph);
  for (LatencyMode mode : {LatencyMode::kVertexGreedy, LatencyMode::kExactPrefix}) {
    std::vector<EdgeId> round =
        SelectParallelRound(graph, pruner, OrderedTasks(graph, pruner), mode);
    EXPECT_EQ(round.size(), 2u);  // Different components: both go.
  }
}

TEST(LatencyTest, SameTableRuleAllowsParallelism) {
  // All 9 pred-0 edges in one component, but edges on different (T1, T2)
  // tuple pairs are non-conflict... only if they cannot co-occur in a
  // candidate. In the Figure-1 chain, pred-0 edges sharing no tuple are
  // non-conflict; edges sharing the T2-row-0 hub conflict through pred 1.
  QueryGraph graph = testing_util::MakeFigure1Chain();
  Pruner pruner(&graph);
  std::vector<EdgeId> round = SelectParallelRound(
      graph, pruner, OrderedTasks(graph, pruner), LatencyMode::kExactPrefix);
  EXPECT_FALSE(round.empty());
  // Within the round, no two edges may be in one candidate.
  for (size_t i = 0; i < round.size(); ++i) {
    for (size_t j = i + 1; j < round.size(); ++j) {
      EXPECT_FALSE(EdgesConflict(graph, round[i], round[j]))
          << round[i] << " vs " << round[j];
    }
  }
}

TEST(LatencyTest, FirstTaskAlwaysSelected) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  Pruner pruner(&graph);
  std::vector<EdgeId> ordered = OrderedTasks(graph, pruner);
  ASSERT_FALSE(ordered.empty());
  for (LatencyMode mode : {LatencyMode::kVertexGreedy, LatencyMode::kExactPrefix}) {
    std::vector<EdgeId> round = SelectParallelRound(graph, pruner, ordered, mode);
    ASSERT_FALSE(round.empty());
    EXPECT_EQ(round[0], ordered[0]);
  }
}

TEST(LatencyTest, ExactRoundNeverContainsConflicts) {
  // Property over the mini paper example graph (exact mode).
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  Pruner pruner(&graph);
  std::vector<EdgeId> round = SelectParallelRound(
      graph, pruner, OrderedTasks(graph, pruner), LatencyMode::kExactPrefix);
  for (size_t i = 0; i < round.size(); ++i) {
    for (size_t j = i + 1; j < round.size(); ++j) {
      EXPECT_FALSE(EdgesConflict(graph, round[i], round[j]));
    }
  }
}

TEST(LatencyTest, VertexGreedyRespectsPartnerRelationRule) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  Pruner pruner(&graph);
  std::vector<EdgeId> round = SelectParallelRound(
      graph, pruner, OrderedTasks(graph, pruner), LatencyMode::kVertexGreedy);
  // No vertex may have round edges toward two different relations.
  std::map<VertexId, int> partner;
  for (EdgeId e : round) {
    const GraphEdge& edge = graph.edge(e);
    for (auto [a, b] : {std::make_pair(edge.u, edge.v), std::make_pair(edge.v, edge.u)}) {
      auto it = partner.find(a);
      int rel = graph.vertex(b).rel;
      if (it == partner.end()) {
        partner[a] = rel;
      } else {
        EXPECT_EQ(it->second, rel);
      }
    }
  }
}

TEST(LatencyTest, VertexGreedyCoversMoreTasksPerRound) {
  // The greedy mode exists to keep rounds near the predicate count; it must
  // select at least as many tasks per round as the strict prefix.
  QueryGraph graph = testing_util::MakeFigure1Chain();
  Pruner pruner(&graph);
  std::vector<EdgeId> ordered = OrderedTasks(graph, pruner);
  size_t greedy = SelectParallelRound(graph, pruner, ordered,
                                      LatencyMode::kVertexGreedy).size();
  size_t exact = SelectParallelRound(graph, pruner, ordered,
                                     LatencyMode::kExactPrefix).size();
  EXPECT_GE(greedy, exact);
}

TEST(LatencyTest, EmptyInputEmptyRound) {
  QueryGraph graph = testing_util::MakeFigure1Chain();
  Pruner pruner(&graph);
  EXPECT_TRUE(SelectParallelRound(graph, pruner, {}).empty());
}

}  // namespace
}  // namespace cdb
