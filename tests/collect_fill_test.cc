#include <gtest/gtest.h>

#include <set>

#include "exec/collect_fill.h"

namespace cdb {
namespace {

CollectUniverse MakeUniverse(int64_t n) {
  CollectUniverse universe;
  for (int64_t i = 0; i < n; ++i) {
    CollectUniverse::Entity entity;
    entity.canonical = "University " + std::to_string(i);
    entity.variants = {"Univ. " + std::to_string(i), "U" + std::to_string(i)};
    universe.entities.push_back(std::move(entity));
  }
  return universe;
}

TEST(CollectTest, ReachesTarget) {
  CollectUniverse universe = MakeUniverse(200);
  CollectOptions options;
  options.target_distinct = 50;
  CollectResult result = RunCollect(universe, options);
  EXPECT_EQ(result.distinct_collected, 50);
  EXPECT_EQ(result.collected.size(), 50u);
  EXPECT_EQ(result.questions_at_distinct.size(), 50u);
  EXPECT_GE(result.questions_asked, 50);
}

TEST(CollectTest, AutocompleteBeatsBaseline) {
  // Figure 17(a)'s shape: without duplicate control the baseline wastes many
  // questions on resubmissions; autocompletion saves several-fold.
  CollectUniverse universe = MakeUniverse(150);
  CollectOptions with;
  with.target_distinct = 100;
  with.autocomplete = true;
  with.seed = 5;
  CollectOptions without = with;
  without.autocomplete = false;
  CollectResult cdb = RunCollect(universe, with);
  CollectResult deco = RunCollect(universe, without);
  EXPECT_EQ(cdb.distinct_collected, 100);
  EXPECT_EQ(deco.distinct_collected, 100);
  EXPECT_LT(cdb.questions_asked, deco.questions_asked);
  EXPECT_GT(deco.duplicates, cdb.duplicates);
}

TEST(CollectTest, AutocompleteCanonicalizes) {
  CollectUniverse universe = MakeUniverse(30);
  CollectOptions options;
  options.target_distinct = 30;
  options.autocomplete = true;
  CollectResult result = RunCollect(universe, options);
  for (const std::string& s : result.collected) {
    EXPECT_EQ(s.rfind("University ", 0), 0u) << s;
  }
}

TEST(CollectTest, QuestionCurveIsMonotone) {
  CollectUniverse universe = MakeUniverse(120);
  CollectOptions options;
  options.target_distinct = 80;
  options.autocomplete = false;
  CollectResult result = RunCollect(universe, options);
  for (size_t i = 1; i < result.questions_at_distinct.size(); ++i) {
    EXPECT_GT(result.questions_at_distinct[i], result.questions_at_distinct[i - 1]);
  }
}

TEST(CollectTest, TargetCappedByUniverse) {
  CollectUniverse universe = MakeUniverse(10);
  CollectOptions options;
  options.target_distinct = 50;
  CollectResult result = RunCollect(universe, options);
  EXPECT_EQ(result.distinct_collected, 10);
}

std::vector<FillTaskSpec> MakeFillSpecs(int n) {
  std::vector<FillTaskSpec> specs;
  const std::vector<std::string> states = {"Illinois", "California",
                                           "Massachusetts", "Texas"};
  for (int i = 0; i < n; ++i) {
    FillTaskSpec spec;
    spec.question = "state of university " + std::to_string(i);
    spec.truth = states[static_cast<size_t>(i) % states.size()];
    for (const std::string& s : states) {
      if (s != spec.truth) spec.wrong_pool.push_back(s);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(FillTest, EarlyStopSavesCost) {
  // Figure 17(b)'s shape: CDB's 3-of-5 agreement stop saves ~30% over
  // always asking 5 workers.
  std::vector<FillTaskSpec> specs = MakeFillSpecs(100);
  FillOptions cdb;
  cdb.early_stop = true;
  cdb.worker_quality_mean = 0.85;
  cdb.seed = 7;
  FillOptions deco = cdb;
  deco.early_stop = false;
  FillResult cdb_result = RunFill(specs, cdb);
  FillResult deco_result = RunFill(specs, deco);
  EXPECT_EQ(deco_result.answers_collected, 500);
  EXPECT_LT(cdb_result.answers_collected, deco_result.answers_collected);
  // Accuracy stays high despite the early stop.
  EXPECT_GT(static_cast<double>(cdb_result.cells_correct) /
                static_cast<double>(cdb_result.cells_filled),
            0.85);
}

TEST(FillTest, PerfectWorkersStopAtThree) {
  std::vector<FillTaskSpec> specs = MakeFillSpecs(20);
  FillOptions options;
  options.worker_quality_mean = 1.0;
  options.worker_quality_stddev = 0.0;
  options.early_stop = true;
  FillResult result = RunFill(specs, options);
  EXPECT_EQ(result.answers_collected, 60);  // 3 per cell.
  EXPECT_EQ(result.cells_correct, 20);
}

TEST(FillTest, ValuesComeFromPivot) {
  std::vector<FillTaskSpec> specs = MakeFillSpecs(10);
  FillOptions options;
  options.worker_quality_mean = 0.95;
  FillResult result = RunFill(specs, options);
  ASSERT_EQ(result.values.size(), 10u);
  EXPECT_EQ(result.cells_filled, 10);
}

}  // namespace
}  // namespace cdb
