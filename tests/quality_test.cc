#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "quality/task_assignment.h"
#include "quality/truth_inference.h"

namespace cdb {
namespace {

// ------------------------------------------------------ Bayesian voting ---

TEST(BayesianVoteTest, SingleConfidentAnswer) {
  std::vector<double> p = BayesianVote({{0.9, 0}}, 2);
  EXPECT_NEAR(p[0], 0.9, 1e-9);
  EXPECT_NEAR(p[1], 0.1, 1e-9);
}

TEST(BayesianVoteTest, AgreementCompounds) {
  std::vector<double> p = BayesianVote({{0.8, 0}, {0.8, 0}, {0.8, 0}}, 2);
  // 0.8^3 / (0.8^3 + 0.2^3).
  EXPECT_NEAR(p[0], 0.512 / (0.512 + 0.008), 1e-9);
}

TEST(BayesianVoteTest, HighQualityOutvotesLowQuality) {
  // Eq. 2: a 0.95 worker saying "0" beats two 0.6 workers saying "1".
  std::vector<double> p = BayesianVote({{0.95, 0}, {0.6, 1}, {0.6, 1}}, 2);
  EXPECT_GT(p[0], p[1]);
}

TEST(BayesianVoteTest, MultiwayWrongMassSplits) {
  // With 4 choices, a wrong answer has probability (1-q)/3 per choice.
  std::vector<double> p = BayesianVote({{0.7, 2}}, 4);
  EXPECT_NEAR(p[2], 0.7, 1e-9);
  EXPECT_NEAR(p[0], 0.1, 1e-9);
  EXPECT_NEAR(p[1], 0.1, 1e-9);
  EXPECT_NEAR(p[3], 0.1, 1e-9);
}

TEST(BayesianVoteTest, SumsToOne) {
  std::vector<double> p =
      BayesianVote({{0.9, 0}, {0.2, 1}, {0.55, 2}, {0.7, 0}}, 3);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-9);
}

// ----------------------------------------------------------------- EM ---

std::vector<ChoiceObservation> SimulateAnswers(int num_tasks, int num_workers,
                                               const std::vector<double>& quality,
                                               Rng& rng,
                                               std::vector<int>* truths) {
  std::vector<ChoiceObservation> obs;
  truths->clear();
  for (int t = 0; t < num_tasks; ++t) {
    int truth = static_cast<int>(rng.UniformInt(0, 1));
    truths->push_back(truth);
    for (int w = 0; w < num_workers; ++w) {
      int answer = rng.Bernoulli(quality[static_cast<size_t>(w)]) ? truth : 1 - truth;
      obs.push_back({t, w, answer});
    }
  }
  return obs;
}

TEST(EmTest, RecoversWorkerQualities) {
  Rng rng(42);
  std::vector<double> quality = {0.95, 0.9, 0.85, 0.6, 0.55};
  std::vector<int> truths;
  std::vector<ChoiceObservation> obs =
      SimulateAnswers(400, 5, quality, rng, &truths);
  InferenceResult result = InferSingleChoiceEm(obs, EmOptions{});
  for (int w = 0; w < 5; ++w) {
    EXPECT_NEAR(result.worker_quality.at(w), quality[static_cast<size_t>(w)], 0.07)
        << "worker " << w;
  }
}

TEST(EmTest, BeatsMajorityVotingWithHeterogeneousWorkers) {
  // The CDB+ claim (Figures 9, 20): with mixed-quality workers, EM +
  // Bayesian voting recovers more truths than majority voting.
  Rng rng(7);
  std::vector<double> quality = {0.95, 0.95, 0.45, 0.45, 0.45};
  std::vector<int> truths;
  std::vector<ChoiceObservation> obs =
      SimulateAnswers(600, 5, quality, rng, &truths);
  InferenceResult em = InferSingleChoiceEm(obs, EmOptions{});
  InferenceResult mv = InferSingleChoiceMajority(obs, 2);
  int em_correct = 0;
  int mv_correct = 0;
  for (size_t t = 0; t < truths.size(); ++t) {
    TaskId id = static_cast<TaskId>(t);
    em_correct += em.Truth(id) == truths[t] ? 1 : 0;
    mv_correct += mv.Truth(id) == truths[t] ? 1 : 0;
  }
  EXPECT_GT(em_correct, mv_correct);
  EXPECT_GT(em_correct, static_cast<int>(truths.size() * 9) / 10);
}

TEST(EmTest, QualityPriorsSeedNewRound) {
  std::vector<ChoiceObservation> obs = {{0, 7, 0}};
  EmOptions options;
  options.quality_priors[7] = 0.95;
  options.max_iterations = 0;  // No updates: posterior reflects the prior.
  InferenceResult result = InferSingleChoiceEm(obs, options);
  // With zero iterations there are no posteriors; run one E-step instead.
  options.max_iterations = 1;
  result = InferSingleChoiceEm(obs, options);
  EXPECT_NEAR(result.posteriors.at(0)[0], 0.95, 0.05);
}

TEST(EmTest, EmptyObservations) {
  InferenceResult result = InferSingleChoiceEm({}, EmOptions{});
  EXPECT_TRUE(result.posteriors.empty());
  EXPECT_EQ(result.Truth(0), -1);
  EXPECT_EQ(result.Confidence(0), 0.0);
}

TEST(MajorityVoteTest, Basic) {
  std::vector<ChoiceObservation> obs = {
      {0, 0, 1}, {0, 1, 1}, {0, 2, 0}, {1, 0, 0}};
  InferenceResult result = InferSingleChoiceMajority(obs, 2);
  EXPECT_EQ(result.Truth(0), 1);
  EXPECT_NEAR(result.Confidence(0), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(result.Truth(1), 0);
}

// -------------------------------------------------------- Multi-choice ---

TEST(MultiChoiceTest, DecomposesPerChoice) {
  // Three workers; choices {0, 2} are the truth; worker 2 is confused.
  std::vector<Answer> answers(3);
  answers[0].worker = 0;
  answers[0].choice_set = {0, 2};
  answers[1].worker = 1;
  answers[1].choice_set = {0, 2};
  answers[2].worker = 2;
  answers[2].choice_set = {1};
  std::map<int, double> quality = {{0, 0.9}, {1, 0.9}, {2, 0.6}};
  std::vector<int> truth = InferMultiChoice(answers, 3, quality);
  EXPECT_EQ(truth, (std::vector<int>{0, 2}));
}

// ------------------------------------------------------- Fill-in-blank ---

TEST(FillInBlankTest, PivotIsClosestToOthers) {
  std::vector<Answer> answers(4);
  answers[0].text = "Massachusetts";
  answers[1].text = "Massachusets";   // Typo, still close.
  answers[2].text = "massachusetts";  // Case variant.
  answers[3].text = "California";     // Outlier.
  std::string truth =
      InferFillInBlank(answers, SimilarityFunction::kQGramJaccard);
  EXPECT_NE(truth, "California");
}

TEST(FillInBlankTest, SingleAnswerWins) {
  std::vector<Answer> answers(1);
  answers[0].text = "only";
  EXPECT_EQ(InferFillInBlank(answers, SimilarityFunction::kQGramJaccard), "only");
}

// ------------------------------------------------------------ Entropy ---

TEST(EntropyTest, KnownValues) {
  EXPECT_NEAR(Entropy({0.5, 0.5}), std::log(2.0), 1e-12);
  EXPECT_NEAR(Entropy({1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(Entropy({}), 0.0, 1e-12);
}

TEST(PosteriorAfterAnswerTest, BayesUpdate) {
  std::vector<double> post = PosteriorAfterAnswer({0.5, 0.5}, 0.8, 0);
  EXPECT_NEAR(post[0], 0.8, 1e-9);
  EXPECT_NEAR(post[1], 0.2, 1e-9);
  // A 0.5-quality worker on binary tasks adds no information.
  post = PosteriorAfterAnswer({0.7, 0.3}, 0.5, 1);
  EXPECT_NEAR(post[0], 0.7, 1e-9);
}

TEST(ExpectedImprovementTest, UncertainTasksGainMore) {
  // Eq. 3: a uniform task has more to gain than a near-settled one.
  double uncertain = ExpectedQualityImprovement({0.5, 0.5}, 0.8);
  double settled = ExpectedQualityImprovement({0.98, 0.02}, 0.8);
  EXPECT_GT(uncertain, settled);
  EXPECT_GE(uncertain, 0.0);
}

TEST(ExpectedImprovementTest, BetterWorkersGainMore) {
  double good = ExpectedQualityImprovement({0.5, 0.5}, 0.95);
  double mediocre = ExpectedQualityImprovement({0.5, 0.5}, 0.6);
  EXPECT_GT(good, mediocre);
}

TEST(ExpectedImprovementTest, UninformativeWorkerGainsNothing) {
  EXPECT_NEAR(ExpectedQualityImprovement({0.5, 0.5}, 0.5), 0.0, 1e-9);
}

// -------------------------------------------------------- Consistency ---

TEST(FillConsistencyTest, Eq4) {
  std::vector<Answer> answers(3);
  answers[0].text = "abc";
  answers[1].text = "abc";
  answers[2].text = "abc";
  EXPECT_NEAR(FillConsistency(answers, SimilarityFunction::kQGramJaccard), 1.0, 1e-9);
  answers[2].text = "zzzzz";
  double mixed = FillConsistency(answers, SimilarityFunction::kQGramJaccard);
  EXPECT_LT(mixed, 1.0);
  EXPECT_NEAR(mixed, 1.0 / 3.0, 1e-9);  // One identical pair out of three.
  EXPECT_EQ(FillConsistency({}, SimilarityFunction::kQGramJaccard), 1.0);
}

TEST(CompletenessScoreTest, Bounds) {
  EXPECT_NEAR(CompletenessScore(20, 100), 0.8, 1e-12);
  EXPECT_NEAR(CompletenessScore(100, 100), 0.0, 1e-12);
  EXPECT_NEAR(CompletenessScore(0, 100), 1.0, 1e-12);
  EXPECT_EQ(CompletenessScore(5, 0), 0.0);
  EXPECT_NEAR(CompletenessScore(120, 100), 0.0, 1e-12);  // Clamped.
}

// ----------------------------------------------------- EntropyAssigner ---

TEST(EntropyAssignerTest, PicksMostUncertainTasks) {
  std::map<TaskId, std::vector<double>> posteriors = {
      {10, {0.99, 0.01}},
      {11, {0.55, 0.45}},
      {12, {0.80, 0.20}},
  };
  std::map<int, double> worker_quality = {{0, 0.9}};
  EntropyAssigner assigner(&posteriors, &worker_quality, 2);
  SimulatedWorker worker(0, 0.9);
  std::vector<size_t> picks = assigner(worker, {10, 11, 12}, 2);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0], 1u);  // Task 11 (most uncertain).
  EXPECT_EQ(picks[1], 2u);  // Task 12.
}

TEST(EntropyAssignerTest, UnknownTasksGetUniformPrior) {
  std::map<TaskId, std::vector<double>> posteriors;
  std::map<int, double> worker_quality;
  EntropyAssigner assigner(&posteriors, &worker_quality, 2);
  SimulatedWorker worker(5, 0.8);
  std::vector<size_t> picks = assigner(worker, {1, 2, 3}, 5);
  EXPECT_EQ(picks.size(), 3u);  // Capped at available.
}

}  // namespace
}  // namespace cdb
