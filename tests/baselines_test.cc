#include <gtest/gtest.h>

#include "baselines/budget_baseline.h"
#include "baselines/er_join.h"
#include "baselines/tree_executor.h"
#include "bench_util/metrics.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"
#include "tests/test_util.h"

namespace cdb {
namespace {

ResolvedQuery Resolve(const GeneratedDataset& ds, const std::string& cql) {
  Statement stmt = ParseStatement(cql).value();
  return AnalyzeSelect(std::get<SelectStatement>(stmt), ds.catalog).value();
}

PlatformOptions PerfectPlatform(uint64_t seed = 3) {
  PlatformOptions platform;
  platform.worker_quality_mean = 1.0;
  platform.worker_quality_stddev = 0.0;
  platform.redundancy = 1;
  platform.seed = seed;
  return platform;
}

// ----------------------------------------------------------- Join order ---

TEST(JoinOrderTest, EveryPolicyCoversAllPredicates) {
  QueryGraph graph = testing_util::MakeFigure4Neighborhood();
  OracleColors oracle(static_cast<size_t>(graph.num_edges()), EdgeColor::kRed);
  for (TreePolicy policy : {TreePolicy::kCrowdDb, TreePolicy::kQurk,
                            TreePolicy::kDeco, TreePolicy::kOptTree}) {
    std::vector<int> order = ChoosePredicateOrder(graph, policy, &oracle);
    ASSERT_EQ(order.size(), 3u) << TreePolicyName(policy);
    std::vector<bool> seen(3, false);
    for (int p : order) seen[static_cast<size_t>(p)] = true;
    EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
  }
}

TEST(JoinOrderTest, TreeModelCostFigure1) {
  // The motivating example: the best tree order asks 3 + 9 = 12 tasks
  // (pred 1 first refutes T2 row 0 but rows of T2 without pred-1 edges die
  // too, killing all pred-0 edges: 3 tasks total? No — tuples of T2 with no
  // pred-1 edge are only pruned after pred 1 *executes*, and pred-0 edges
  // are asked only between active tuples).
  QueryGraph graph = testing_util::MakeFigure1Chain();
  OracleColors colors(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    colors[static_cast<size_t>(e)] =
        graph.edge(e).pred == 1 ? EdgeColor::kRed : EdgeColor::kBlue;
  }
  // Order (0, 1): asks all 9 pred-0 edges, then the 3 pred-1 edges of the
  // surviving hub: 12 total.
  EXPECT_EQ(TreeModelCost(graph, {0, 1}, colors), 12);
  // Order (1, 0): asks the 3 pred-1 edges; all RED, T2 row 0 dies, and the
  // other T2 rows have no pred-1 edge so they die as well: 3 total.
  EXPECT_EQ(TreeModelCost(graph, {1, 0}, colors), 3);
  // OptTree finds the cheap order.
  std::vector<int> best = ChoosePredicateOrder(graph, TreePolicy::kOptTree, &colors);
  EXPECT_EQ(TreeModelCost(graph, best, colors), 3);
}

TEST(JoinOrderTest, ActiveVerticesSemiJoin) {
  QueryGraph graph = testing_util::MakeFigure1Chain();
  // Execute pred 1 with all-RED edges: T2 row 0 loses support, and since no
  // other T2 row has pred-1 edges, all of T2 (and only T2... plus T3) dies.
  auto edge_blue = [](EdgeId) { return false; };
  std::vector<uint8_t> active = ActiveVertices(graph, {1}, edge_blue);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    int rel = graph.vertex(v).rel;
    if (rel == 0) {
      EXPECT_TRUE(active[v]);  // T1 untouched by pred 1.
    } else {
      EXPECT_FALSE(active[v]);
    }
  }
}

// -------------------------------------------------------- Tree executor ---

class BaselineMiniTest : public ::testing::Test {
 protected:
  BaselineMiniTest()
      : dataset_(MakeMiniPaperExample()),
        query_(Resolve(dataset_, kMiniExampleQuery)),
        truth_(MakeEdgeTruth(&dataset_, &query_)) {}

  GeneratedDataset dataset_;
  ResolvedQuery query_;
  EdgeTruthFn truth_;
};

TEST_F(BaselineMiniTest, TreeExecutorPerfectCrowdIsPrecise) {
  for (TreePolicy policy : {TreePolicy::kCrowdDb, TreePolicy::kQurk,
                            TreePolicy::kDeco, TreePolicy::kOptTree}) {
    TreeExecutorOptions options;
    options.policy = policy;
    options.platform = PerfectPlatform();
    TreeModelExecutor executor(&query_, options, truth_);
    ExecutionResult result = executor.Run().value();
    PrecisionRecall pr =
        ComputeF1(result.answers, TrueAnswers(dataset_, query_));
    EXPECT_DOUBLE_EQ(pr.precision, 1.0) << TreePolicyName(policy);
    EXPECT_GT(result.answers.size(), 0u) << TreePolicyName(policy);
    // One round per predicate.
    EXPECT_EQ(result.stats.rounds, 3) << TreePolicyName(policy);
  }
}

TEST_F(BaselineMiniTest, GraphModelBeatsTreeModelOnCost) {
  TreeExecutorOptions tree_options;
  tree_options.policy = TreePolicy::kOptTree;
  tree_options.platform = PerfectPlatform();
  int64_t tree_cost =
      TreeModelExecutor(&query_, tree_options, truth_).Run().value().stats.tasks_asked;

  ExecutorOptions cdb_options;
  cdb_options.platform = PerfectPlatform();
  // Use the paper's exact latency rule here: the vertex-greedy default trades
  // a few extra tasks for fewer rounds, which on this miniature example can
  // cede the comparison to the *oracle* tree order.
  cdb_options.latency_mode = LatencyMode::kExactPrefix;
  int64_t cdb_cost =
      CdbExecutor(&query_, cdb_options, truth_).Run().value().stats.tasks_asked;
  // The headline claim, on the paper's own miniature example: even against
  // the oracle-optimal tree order, tuple-level optimization does not lose.
  EXPECT_LE(cdb_cost, tree_cost);
}

// --------------------------------------------------------------- ER join ---

TEST_F(BaselineMiniTest, ErExecutorsComplete) {
  for (ErMethod method : {ErMethod::kTrans, ErMethod::kAcd}) {
    ErExecutorOptions options;
    options.method = method;
    options.platform = PerfectPlatform();
    ErJoinExecutor executor(&query_, options, truth_);
    ExecutionResult result = executor.Run().value();
    PrecisionRecall pr =
        ComputeF1(result.answers, TrueAnswers(dataset_, query_));
    EXPECT_DOUBLE_EQ(pr.precision, 1.0) << ErMethodName(method);
    EXPECT_GT(result.stats.tasks_asked, 0) << ErMethodName(method);
  }
}

TEST_F(BaselineMiniTest, ErTakesMoreRoundsThanTree) {
  ErExecutorOptions er_options;
  er_options.method = ErMethod::kTrans;
  er_options.platform = PerfectPlatform();
  ExecutionResult er =
      ErJoinExecutor(&query_, er_options, truth_).Run().value();
  // The tree model takes exactly #predicates rounds; ER methods need
  // several rounds per join (Section 6.2.1).
  EXPECT_GT(er.stats.rounds, 3);
}

TEST_F(BaselineMiniTest, TransCostsNoMoreThanAcd) {
  // Trans infers non-matches by transitivity in addition to matches, so it
  // can only ask fewer (or equal) questions than ACD on the same input.
  ErExecutorOptions trans_options;
  trans_options.method = ErMethod::kTrans;
  trans_options.platform = PerfectPlatform(23);
  int64_t trans_cost =
      ErJoinExecutor(&query_, trans_options, truth_).Run().value().stats.tasks_asked;
  ErExecutorOptions acd_options;
  acd_options.method = ErMethod::kAcd;
  acd_options.platform = PerfectPlatform(23);
  int64_t acd_cost =
      ErJoinExecutor(&query_, acd_options, truth_).Run().value().stats.tasks_asked;
  EXPECT_LE(trans_cost, acd_cost);
}

// ------------------------------------------------------ Budget baseline ---

TEST_F(BaselineMiniTest, BudgetBaselineRespectsBudget) {
  BudgetBaselineOptions options;
  options.budget = 10;
  options.platform = PerfectPlatform();
  BudgetBaselineExecutor executor(&query_, options, truth_);
  ExecutionResult result = executor.Run().value();
  EXPECT_LE(result.stats.tasks_asked, 10);
}

TEST_F(BaselineMiniTest, CdbBudgetModeBeatsBaselineRecall) {
  // Figure 18's shape: under the same budget, CDB's candidate-expectation
  // selection finds at least as many answers as the greedy DFS baseline.
  std::vector<QueryAnswer> reference = TrueAnswers(dataset_, query_);
  const int64_t budget = 12;

  BudgetBaselineOptions base_options;
  base_options.budget = budget;
  base_options.platform = PerfectPlatform(17);
  double baseline_recall =
      ComputeF1(BudgetBaselineExecutor(&query_, base_options, truth_)
                    .Run()
                    .value()
                    .answers,
                reference)
          .recall;

  ExecutorOptions cdb_options;
  cdb_options.platform = PerfectPlatform(17);
  cdb_options.budget = budget;
  double cdb_recall =
      ComputeF1(CdbExecutor(&query_, cdb_options, truth_).Run().value().answers,
                reference)
          .recall;
  EXPECT_GE(cdb_recall, baseline_recall);
  EXPECT_GT(cdb_recall, 0.0);
}

}  // namespace
}  // namespace cdb
