// Cross-module property sweeps (parameterized): invariants that must hold
// for random graph shapes, colorings and crowd configurations.
#include <gtest/gtest.h>

#include <set>

#include "bench_util/metrics.h"
#include "bench_util/sim_crowd.h"
#include "common/random.h"
#include "common/serialize.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"
#include "exec/session.h"
#include "cost/known_color.h"
#include "flow/min_cut.h"
#include "graph/candidates.h"
#include "graph/pruning.h"
#include "graph/structure.h"
#include "latency/scheduler.h"
#include "quality/truth_inference.h"

namespace cdb {
namespace {

// Random tree-structured query graph over `num_rels` relations with a
// selection-style leaf (single-vertex relation) sometimes attached.
QueryGraph RandomTreeGraph(Rng& rng, int num_rels, int rows_per_rel,
                           double edge_prob) {
  std::vector<PredicateInfo> preds;
  for (int rel = 1; rel < num_rels; ++rel) {
    int parent = static_cast<int>(rng.UniformInt(0, rel - 1));
    preds.push_back({true, false, parent, rel});
  }
  std::vector<QueryGraph::SyntheticEdge> edges;
  for (size_t p = 0; p < preds.size(); ++p) {
    int right_rows = preds[p].right_rel == num_rels - 1 && rng.Bernoulli(0.3)
                         ? 1  // Selection-like leaf.
                         : rows_per_rel;
    for (int a = 0; a < rows_per_rel; ++a) {
      for (int b = 0; b < right_rows; ++b) {
        if (rng.Bernoulli(edge_prob)) {
          edges.push_back({static_cast<int>(p), a, b, rng.Uniform(0.3, 1.0)});
        }
      }
    }
  }
  if (edges.empty()) edges.push_back({0, 0, 0, 0.5});
  return QueryGraph::MakeSynthetic(num_rels, preds, edges);
}

void RandomColoring(QueryGraph& graph, Rng& rng, double red, double blue) {
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    double roll = rng.Uniform();
    if (roll < red) {
      graph.SetColor(e, EdgeColor::kRed);
    } else if (roll < red + blue) {
      graph.SetColor(e, EdgeColor::kBlue);
    }
  }
}

class TreeGraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeGraphPropertyTest, PrunerMatchesExactValidityOnTrees) {
  Rng rng(GetParam());
  QueryGraph graph = RandomTreeGraph(rng, 2 + static_cast<int>(rng.UniformInt(0, 2)),
                                     4, 0.5);
  RandomColoring(graph, rng, 0.25, 0.25);
  Pruner pruner(&graph);
  ASSERT_TRUE(pruner.group_graph_acyclic());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EXPECT_EQ(pruner.EdgeValid(e), EdgeValidExact(graph, e)) << "edge " << e;
  }
}

TEST_P(TreeGraphPropertyTest, AnswersAreExactlyAllBlueCandidates) {
  Rng rng(GetParam() + 1000);
  QueryGraph graph = RandomTreeGraph(rng, 3, 4, 0.5);
  RandomColoring(graph, rng, 0.3, 0.4);
  for (const Assignment& answer : FindAnswers(graph)) {
    for (EdgeId e : AssignmentEdges(graph, answer)) {
      EXPECT_EQ(graph.edge(e).color, EdgeColor::kBlue);
    }
  }
}

TEST_P(TreeGraphPropertyTest, KnownColorSelectionDeterminesAllAnswers) {
  // Soundness of the Lemma-1 selection on random trees: asking the selected
  // edges must fix the answer set — every all-BLUE candidate uses only
  // selected edges, and every other candidate contains a selected RED edge.
  Rng rng(GetParam() + 2000);
  QueryGraph graph = RandomTreeGraph(rng, 3, 3, 0.6);
  std::vector<EdgeColor> colors(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    colors[static_cast<size_t>(e)] =
        rng.Bernoulli(0.4) ? EdgeColor::kBlue : EdgeColor::kRed;
  }
  std::vector<EdgeId> selected_vec = SelectTasksKnownColors(graph, colors);
  std::set<EdgeId> selected(selected_vec.begin(), selected_vec.end());
  EnumerateCandidates(graph, [&](const Assignment& candidate) {
    std::vector<EdgeId> edges = AssignmentEdges(graph, candidate);
    bool all_blue = true;
    for (EdgeId e : edges) {
      all_blue = all_blue && colors[static_cast<size_t>(e)] == EdgeColor::kBlue;
    }
    if (all_blue) {
      for (EdgeId e : edges) {
        EXPECT_TRUE(selected.count(e)) << "answer edge not asked";
      }
    } else {
      bool refuted = false;
      for (EdgeId e : edges) {
        refuted = refuted || (selected.count(e) > 0 &&
                              colors[static_cast<size_t>(e)] == EdgeColor::kRed);
      }
      EXPECT_TRUE(refuted) << "non-answer candidate not refuted";
    }
    return true;
  });
}

TEST_P(TreeGraphPropertyTest, ChainPlanCoversEveryGroup) {
  Rng rng(GetParam() + 3000);
  QueryGraph graph = RandomTreeGraph(rng, 2 + static_cast<int>(rng.UniformInt(0, 3)),
                                     3, 0.5);
  ChainPlan plan = BuildChainPlan(graph);
  RelGraph rel_graph = BuildRelGraph(graph);
  ASSERT_EQ(plan.occ_group.size() + 1, plan.occ_rel.size());
  std::set<int> groups(plan.occ_group.begin(), plan.occ_group.end());
  EXPECT_EQ(groups.size(), rel_graph.groups.size());
  std::set<int> rels(plan.occ_rel.begin(), plan.occ_rel.end());
  EXPECT_EQ(rels.size(), static_cast<size_t>(graph.num_relations()));
}

TEST_P(TreeGraphPropertyTest, VertexGreedyRoundIsSubsetAndOrdered) {
  Rng rng(GetParam() + 4000);
  QueryGraph graph = RandomTreeGraph(rng, 3, 5, 0.5);
  Pruner pruner(&graph);
  std::vector<EdgeId> ordered = pruner.RemainingTasks();
  std::vector<EdgeId> round = SelectParallelRound(
      graph, pruner, ordered, LatencyMode::kVertexGreedy, 1.0);
  std::set<EdgeId> pool(ordered.begin(), ordered.end());
  std::set<EdgeId> unique(round.begin(), round.end());
  EXPECT_EQ(unique.size(), round.size());  // No duplicates.
  for (EdgeId e : round) EXPECT_TRUE(pool.count(e));
  if (!ordered.empty()) {
    ASSERT_FALSE(round.empty());
    EXPECT_EQ(round[0], ordered[0]);  // Highest-expectation task always goes.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeGraphPropertyTest,
                         ::testing::Range<uint64_t>(0, 15));

// EM calibration sweep: across worker-quality regimes, EM with golden-task
// priors never does materially worse than majority voting, and recovered
// qualities correlate with the truth.
class EmCalibrationTest : public ::testing::TestWithParam<double> {};

TEST_P(EmCalibrationTest, EmTracksWorkerQuality) {
  const double mean_quality = GetParam();
  Rng rng(static_cast<uint64_t>(mean_quality * 1000));
  const int kWorkers = 12;
  const int kTasks = 250;
  std::vector<double> quality(kWorkers);
  for (double& q : quality) q = rng.ClampedGaussian(mean_quality, 0.1, 0.05, 0.99);
  std::vector<ChoiceObservation> obs;
  std::vector<int> truths(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    truths[static_cast<size_t>(t)] = static_cast<int>(rng.UniformInt(0, 1));
    std::set<int> asked;
    while (asked.size() < 5) {
      asked.insert(static_cast<int>(rng.UniformInt(0, kWorkers - 1)));
    }
    for (int w : asked) {
      int answer = rng.Bernoulli(quality[static_cast<size_t>(w)])
                       ? truths[static_cast<size_t>(t)]
                       : 1 - truths[static_cast<size_t>(t)];
      obs.push_back({t, w, answer});
    }
  }
  InferenceResult em = InferSingleChoiceEm(obs, EmOptions{});
  InferenceResult mv = InferSingleChoiceMajority(obs, 2);
  int em_correct = 0;
  int mv_correct = 0;
  for (int t = 0; t < kTasks; ++t) {
    em_correct += em.Truth(t) == truths[static_cast<size_t>(t)] ? 1 : 0;
    mv_correct += mv.Truth(t) == truths[static_cast<size_t>(t)] ? 1 : 0;
  }
  EXPECT_GE(em_correct + 5, mv_correct);  // Never materially worse.
  // Recovered qualities point the right way: best-estimated worker really is
  // above the mean.
  int best_worker = -1;
  double best_quality = -1.0;
  for (const auto& [w, q] : em.worker_quality) {
    if (q > best_quality) {
      best_quality = q;
      best_worker = w;
    }
  }
  EXPECT_GE(quality[static_cast<size_t>(best_worker)], mean_quality - 0.1);
}

INSTANTIATE_TEST_SUITE_P(QualityLevels, EmCalibrationTest,
                         ::testing::Values(0.6, 0.7, 0.8, 0.9));

// Fault-robustness property: with perfect workers, a faulty crowd changes
// the answer *schedule* but not the answer *content* — so whenever every
// asked task still reached the effective redundancy (nothing starved,
// nothing fallback-colored), the query result must equal the fault-free
// run's result. When tasks do starve the run must still terminate cleanly
// with all DST invariants intact.
class FaultRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultRobustnessTest, FaultyResultMatchesCleanWhenEvidenceSuffices) {
  const uint64_t seed = GetParam();

  SimCrowdConfig clean;
  clean.seed = seed;
  SimCrowdReport clean_report = RunSimCrowd(clean).value();
  ASSERT_TRUE(clean_report.violations.empty());

  // Rotate through three fault regimes keyed off the seed.
  SimCrowdConfig faulty = clean;
  switch (seed % 3) {
    case 0:  // Abandonment-heavy.
      faulty.fault.abandon_prob = 0.3;
      faulty.fault.task_deadline_ticks = 8;
      break;
    case 1:  // Straggler-heavy: most answers delayed, many past deadline.
      faulty.fault.straggler_prob = 0.5;
      faulty.fault.straggler_delay_ticks = 6;
      faulty.fault.task_deadline_ticks = 5;
      break;
    default:  // Everything at once.
      faulty.fault.abandon_prob = 0.25;
      faulty.fault.straggler_prob = 0.25;
      faulty.fault.straggler_delay_ticks = 4;
      faulty.fault.duplicate_prob = 0.2;
      faulty.fault.no_show_prob = 0.3;
      faulty.fault.task_deadline_ticks = 6;
      break;
  }
  SimCrowdReport faulty_report = RunSimCrowd(faulty).value();
  for (const std::string& violation : faulty_report.violations) {
    ADD_FAILURE() << "seed " << seed << ": " << violation;
  }

  const ExecutionStats& stats = faulty_report.result.stats;
  if (stats.starved_task_ids.empty() && stats.fallback_colored == 0) {
    // Full evidence: perfect workers answered every task at least
    // effective-redundancy times, so inference must land on the truth both
    // times and the tuple sets coincide.
    EXPECT_EQ(faulty_report.result.answers, clean_report.result.answers)
        << "seed " << seed;
    EXPECT_EQ(faulty_report.color_dump, clean_report.color_dump)
        << "seed " << seed;
  }
}

TEST_P(FaultRobustnessTest, NoisyWorkersNeverCrash) {
  SimCrowdConfig config;
  config.seed = GetParam();
  config.worker_quality_mean = 0.75;
  config.worker_quality_stddev = 0.1;
  config.quality_control = (GetParam() % 2) == 0;
  config.fault.abandon_prob = 0.35;
  config.fault.straggler_prob = 0.3;
  config.fault.straggler_delay_ticks = 5;
  config.fault.duplicate_prob = 0.15;
  config.fault.no_show_prob = 0.25;
  config.fault.task_deadline_ticks = 5;
  config.fault.max_task_expiries = 3;
  Result<SimCrowdReport> report = RunSimCrowd(config);
  ASSERT_TRUE(report.ok()) << report.status().message();
  // Inference over noisy answers may disagree with the clean run; only the
  // structural invariants must hold.
  for (const std::string& violation : report->violations) {
    ADD_FAILURE() << violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultRobustnessTest,
                         ::testing::Range<uint64_t>(1, 13));

// --- Session snapshot round-trip properties (exec/session_snapshot.cc) ---
//
// The blob contract: Restore(Snapshot(s)) is the identity (re-snapshotting
// the restored session reproduces the original bytes exactly), the bytes do
// not depend on the optimizer thread count, and every way of damaging a blob
// is a typed Status — never a crash, never a half-restored session.

ExecutorOptions SnapshotCrowd(uint64_t seed, int threads) {
  ExecutorOptions options;
  options.platform.worker_quality_mean = 0.85;
  options.platform.redundancy = 3;
  options.platform.seed = seed;
  options.num_threads = threads;
  options.graph.num_threads = threads;
  options.quality_control = (seed % 2) == 0;
  if (options.quality_control) options.golden_tasks = 3;
  if (seed % 3 == 0) {
    FaultProfile& fault = options.platform.fault;
    fault.abandon_prob = 0.2;
    fault.straggler_prob = 0.15;
    fault.straggler_delay_ticks = 4;
    fault.duplicate_prob = 0.1;
    fault.no_show_prob = 0.1;
    fault.task_deadline_ticks = 8;
  }
  return options;
}

class SnapshotRoundTripTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  SnapshotRoundTripTest()
      : dataset_(MakeMiniPaperExample()),
        query_(AnalyzeSelect(
                   std::get<SelectStatement>(
                       ParseStatement(kMiniExampleQuery).value()),
                   dataset_.catalog)
                   .value()),
        truth_(MakeEdgeTruth(&dataset_, &query_)) {}

  // A session advanced a seed-dependent number of phases (so the sweep hits
  // every phase and both empty and loaded round buffers across the suite).
  std::string BlobAfterSteps(int threads, int steps) {
    QuerySession session(&query_, SnapshotCrowd(GetParam(), threads), truth_);
    for (int s = 0; s < steps; ++s) {
      Result<bool> more = session.Step();
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.value()) break;
    }
    return session.Snapshot();
  }

  GeneratedDataset dataset_;
  ResolvedQuery query_;
  EdgeTruthFn truth_;
};

TEST_P(SnapshotRoundTripTest, RestoreThenSnapshotReproducesBytes) {
  const int steps = static_cast<int>(GetParam() % 11);
  const std::string blob = BlobAfterSteps(1, steps);

  QuerySession restored(&query_, SnapshotCrowd(GetParam(), 1), truth_);
  Status status = restored.Restore(blob);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(blob, restored.Snapshot());
}

TEST_P(SnapshotRoundTripTest, BytesStableAcrossThreadCounts) {
  const int steps = static_cast<int>(GetParam() % 11);
  EXPECT_EQ(BlobAfterSteps(1, steps), BlobAfterSteps(8, steps));
}

TEST_P(SnapshotRoundTripTest, TruncatedBlobIsTypedError) {
  const std::string blob = BlobAfterSteps(1, static_cast<int>(GetParam() % 7));
  // Every truncation point: seed-strided to keep the sweep fast, but always
  // including the degenerate 0/1-byte and missing-trailer cases.
  const size_t stride = 1 + GetParam() % 17;
  std::vector<size_t> cuts = {0, 1, blob.size() - 1, blob.size() - 9};
  for (size_t cut = 2; cut + 2 < blob.size(); cut += stride) cuts.push_back(cut);
  for (size_t cut : cuts) {
    QuerySession session(&query_, SnapshotCrowd(GetParam(), 1), truth_);
    Status status = session.Restore(blob.substr(0, cut));
    EXPECT_FALSE(status.ok()) << "cut=" << cut;
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST_P(SnapshotRoundTripTest, BitFlippedBlobIsTypedError) {
  const std::string blob = BlobAfterSteps(1, static_cast<int>(GetParam() % 7));
  const size_t stride = 1 + (blob.size() / 24);
  for (size_t pos = GetParam() % stride; pos < blob.size(); pos += stride) {
    std::string damaged = blob;
    damaged[pos] = static_cast<char>(damaged[pos] ^ (1 << (GetParam() % 8)));
    QuerySession session(&query_, SnapshotCrowd(GetParam(), 1), truth_);
    Status status = session.Restore(damaged);
    // A flip anywhere (payload or trailer) breaks the checksum.
    EXPECT_FALSE(status.ok()) << "pos=" << pos;
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << "pos=" << pos;
  }
}

TEST_P(SnapshotRoundTripTest, UnknownVersionIsTypedError) {
  std::string blob = BlobAfterSteps(1, static_cast<int>(GetParam() % 7));
  // Bump the version word (bytes 4..7) and re-seal the checksum so only the
  // version — not integrity — is wrong.
  std::string payload = blob.substr(0, blob.size() - sizeof(uint64_t));
  const uint32_t version = QuerySession::kSnapshotVersion + 1 +
                           static_cast<uint32_t>(GetParam() % 5);
  for (size_t i = 0; i < 4; ++i) {
    payload[4 + i] = static_cast<char>((version >> (8 * i)) & 0xff);
  }
  std::string resealed = payload;
  uint64_t checksum = SnapshotChecksum(resealed);
  for (size_t i = 0; i < 8; ++i) {
    resealed.push_back(static_cast<char>((checksum >> (8 * i)) & 0xff));
  }
  QuerySession session(&query_, SnapshotCrowd(GetParam(), 1), truth_);
  Status status = session.Restore(resealed);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST_P(SnapshotRoundTripTest, RestoreRequiresFreshSession) {
  const std::string blob = BlobAfterSteps(1, 3);
  QuerySession used(&query_, SnapshotCrowd(GetParam(), 1), truth_);
  ASSERT_TRUE(used.Step().value());
  Status status = used.Restore(blob);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRoundTripTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace cdb
