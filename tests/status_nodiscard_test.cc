// Positive half of the [[nodiscard]] / check-macro policy tests.
//
// This file compiles under the repo-wide -Werror wall, so merely building it
// proves the sanctioned consumption patterns (CDB_RETURN_IF_ERROR,
// CDB_ASSIGN_OR_RETURN, ok() branches, explicit (void) discards) stay legal.
// The negative half — that silently discarding a Status or Result<T> is a
// compile error — cannot live in a .cc that must compile, so it runs as the
// `cdb_nodiscard` ctest (tools/check_nodiscard.sh), a compile-fail probe
// under -Werror=unused-result.
//
// The runtime tests below cover the logging satellite work: CDB_CHECK_MSG
// accepting std::string, and the CDB_CHECK_{EQ,NE,LT,LE,GT,GE} macros
// printing both operand values on failure.

#include <string>
#include <type_traits>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/status.h"

namespace cdb {
namespace {

Status FailingStatus() { return Status::InvalidArgument("bad arg"); }
Result<int> FailingResult() { return Status::NotFound("no value"); }
Result<int> GoodResult() { return 42; }

Status PropagateStatus() {
  CDB_RETURN_IF_ERROR(FailingStatus());
  return Status::Ok();
}

Status PropagateResult() {
  CDB_ASSIGN_OR_RETURN(int v, FailingResult());
  (void)v;
  return Status::Ok();
}

TEST(StatusNodiscardTest, SanctionedConsumptionPatternsCompileAndWork) {
  EXPECT_EQ(PropagateStatus().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(PropagateResult().code(), StatusCode::kNotFound);

  if (Status s = FailingStatus(); !s.ok()) {
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
  // An explicit discard is visible at the call site and stays legal.
  (void)FailingStatus();

  // Consuming a Result in a void context: check, then use.
  auto r = GoodResult();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 42);
}

TEST(StatusNodiscardTest, StatusAndResultCarryNodiscardSemantics) {
  // The attribute itself is probed by tools/check_nodiscard.sh; here we pin
  // down the API shape it protects.
  static_assert(std::is_same_v<decltype(FailingStatus().ok()), bool>);
  static_assert(
      std::is_same_v<decltype(GoodResult().status()), const Status&>);
  Result<int> r = GoodResult();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(CheckMacrosDeathTest, CheckMsgAcceptsStdString) {
  const std::string why = "built at runtime: id=" + std::to_string(17);
  EXPECT_DEATH(CDB_CHECK_MSG(1 == 2, why), "id=17");
  // C-string literals still work.
  EXPECT_DEATH(CDB_CHECK_MSG(false, "literal message"), "literal message");
  // Passing does not evaluate the failure path.
  CDB_CHECK_MSG(true, why);
}

TEST(CheckMacrosDeathTest, CheckOpMacrosPrintBothOperands) {
  const int lhs = 3;
  const int rhs = 4;
  EXPECT_DEATH(CDB_CHECK_EQ(lhs, rhs), "left=3 right=4");
  EXPECT_DEATH(CDB_CHECK_GT(lhs, rhs), "lhs > rhs");
  EXPECT_DEATH(CDB_CHECK_GE(lhs, rhs), "left=3 right=4");
  EXPECT_DEATH(CDB_CHECK_NE(lhs, 3), "left=3 right=3");

  const std::string a = "alpha";
  const std::string b = "beta";
  EXPECT_DEATH(CDB_CHECK_EQ(a, b), "left=alpha right=beta");

  // Passing comparisons are silent and evaluate operands exactly once.
  int evals = 0;
  auto once = [&evals] { return ++evals; };
  CDB_CHECK_EQ(once(), 1);
  EXPECT_EQ(evals, 1);
  CDB_CHECK_LT(1, 2);
  CDB_CHECK_LE(2, 2);
  CDB_CHECK_GT(3, 2);
  CDB_CHECK_GE(3, 3);
  CDB_CHECK_NE(1, 2);
}

struct Unprintable {
  int v;
  bool operator==(const Unprintable&) const = default;
};

TEST(CheckMacrosDeathTest, UnprintableOperandsDegradeGracefully) {
  Unprintable x{1};
  Unprintable y{2};
  EXPECT_DEATH(CDB_CHECK_EQ(x, y), "left=<unprintable> right=<unprintable>");
}

TEST(CheckMacrosTest, DcheckKeepsConditionVariablesAlive) {
  // Under NDEBUG, CDB_DCHECK(cond) expands to (void)sizeof((cond)): the
  // condition is never evaluated but its variables stay odr-used enough to
  // dodge -Werror=unused-variable. This test runs in both modes; in debug
  // builds the dcheck also actually fires.
  const int dcheck_only = 7;
  CDB_DCHECK(dcheck_only == 7);
  SUCCEED();
}

}  // namespace
}  // namespace cdb
