// Tests for the paper's extension features: golden tasks (Appendix E) and
// cross-market deployment (Section 2.2) wired into the executor.
#include <gtest/gtest.h>

#include "bench_util/metrics.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"
#include "exec/executor.h"
#include "quality/truth_inference.h"

namespace cdb {
namespace {

TEST(GoldenTasksTest, AccurateWorkersScoreHigh) {
  std::map<TaskId, int> truths = {{-1, 0}, {-2, 1}, {-3, 0}, {-4, 1}};
  std::vector<ChoiceObservation> answers;
  // Worker 1 answers all four correctly; worker 2 gets all four wrong.
  for (const auto& [task, truth] : truths) {
    answers.push_back({task, 1, truth});
    answers.push_back({task, 2, 1 - truth});
  }
  std::map<int, double> quality = QualityFromGoldenTasks(answers, truths);
  EXPECT_GT(quality.at(1), 0.85);
  EXPECT_LT(quality.at(2), 0.4);
}

TEST(GoldenTasksTest, SmoothedTowardDefault) {
  // One answer only: the estimate stays near the prior.
  std::map<TaskId, int> truths = {{-1, 0}};
  std::vector<ChoiceObservation> answers = {{-1, 7, 0}};
  std::map<int, double> quality = QualityFromGoldenTasks(answers, truths, 0.7, 2.0);
  EXPECT_NEAR(quality.at(7), (2.0 * 0.7 + 1.0) / 3.0, 1e-9);
}

TEST(GoldenTasksTest, UnknownTasksIgnored) {
  std::map<TaskId, int> truths = {{-1, 0}};
  std::vector<ChoiceObservation> answers = {{-99, 7, 0}};
  EXPECT_TRUE(QualityFromGoldenTasks(answers, truths).empty());
}

class ExecutorExtensionTest : public ::testing::Test {
 protected:
  ExecutorExtensionTest() : dataset_(MakeMiniPaperExample()) {
    Statement stmt = ParseStatement(kMiniExampleQuery).value();
    query_ = AnalyzeSelect(std::get<SelectStatement>(stmt), dataset_.catalog).value();
    truth_ = MakeEdgeTruth(&dataset_, &query_);
  }

  GeneratedDataset dataset_;
  ResolvedQuery query_;
  EdgeTruthFn truth_;
};

TEST_F(ExecutorExtensionTest, GoldenTasksWarmUpRun) {
  ExecutorOptions options;
  options.quality_control = true;
  options.golden_tasks = 10;
  options.platform.worker_quality_mean = 0.85;
  options.platform.seed = 31;
  CdbExecutor executor(&query_, options, truth_);
  ExecutionResult result = executor.Run().value();
  // The warm-up answers are extra crowd work but not query tasks.
  EXPECT_GT(result.stats.worker_answers,
            result.stats.tasks_asked * options.platform.redundancy);
  EXPECT_GT(result.answers.size(), 0u);
}

TEST_F(ExecutorExtensionTest, CrossMarketDeploymentCompletes) {
  ExecutorOptions options;
  PlatformOptions amt;
  amt.market_name = "SimAMT";
  amt.worker_quality_mean = 1.0;
  amt.worker_quality_stddev = 0.0;
  amt.redundancy = 1;
  amt.seed = 5;
  PlatformOptions flower = amt;
  flower.market_name = "SimCrowdFlower";
  flower.requester_controls_assignment = false;
  flower.seed = 6;
  options.markets = {amt, flower};
  CdbExecutor executor(&query_, options, truth_);
  ExecutionResult result = executor.Run().value();
  PrecisionRecall pr = ComputeF1(result.answers, TrueAnswers(dataset_, query_));
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_GT(result.stats.tasks_asked, 0);
  EXPECT_EQ(result.stats.worker_answers, result.stats.tasks_asked);
}

TEST_F(ExecutorExtensionTest, CrossMarketMatchesSingleMarketAnswers) {
  // With perfect workers, deploying across two markets returns exactly the
  // same answer set as a single market.
  ExecutorOptions single;
  single.platform.worker_quality_mean = 1.0;
  single.platform.worker_quality_stddev = 0.0;
  single.platform.redundancy = 1;
  ExecutionResult base = CdbExecutor(&query_, single, truth_).Run().value();

  ExecutorOptions multi = single;
  PlatformOptions b = single.platform;
  b.seed = 99;
  multi.markets = {single.platform, b};
  ExecutionResult cross = CdbExecutor(&query_, multi, truth_).Run().value();
  EXPECT_EQ(base.answers, cross.answers);
}

}  // namespace
}  // namespace cdb
