#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/table.h"

namespace cdb {
namespace {

Schema TwoColumnSchema() {
  return Schema({{"name", ValueType::kString, false},
                 {"count", ValueType::kInt64, false}});
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::CNull().is_cnull());
  EXPECT_TRUE(Value::CNull().is_missing());
  EXPECT_FALSE(Value::Int(3).is_missing());
  EXPECT_EQ(Value::Int(3).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);  // Promotion.
  EXPECT_EQ(Value::Str("x").AsString(), "x");
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::CNull().ToString(), "CNULL");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
}

TEST(ValueTest, SqlEquals) {
  EXPECT_TRUE(Value::Int(3).SqlEquals(Value::Int(3)));
  EXPECT_TRUE(Value::Int(3).SqlEquals(Value::Real(3.0)));
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  EXPECT_FALSE(Value::CNull().SqlEquals(Value::CNull()));
  EXPECT_FALSE(Value::Str("3").SqlEquals(Value::Int(3)));
}

TEST(ValueTest, StructuralEquality) {
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_FALSE(Value::Str("a") == Value::Str("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_FALSE(Value::Null() == Value::CNull());
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema schema = TwoColumnSchema();
  ASSERT_TRUE(schema.FindColumn("NAME").ok());
  EXPECT_EQ(schema.FindColumn("NAME").value(), 0u);
  EXPECT_EQ(schema.FindColumn("count").value(), 1u);
  EXPECT_FALSE(schema.FindColumn("missing").ok());
}

TEST(SchemaTest, ToStringMentionsCrowd) {
  Schema schema({{"gender", ValueType::kString, true}});
  EXPECT_NE(schema.ToString().find("CROWD"), std::string::npos);
}

TEST(TableTest, AppendChecksArity) {
  Table table("T", TwoColumnSchema());
  EXPECT_FALSE(table.AppendRow({Value::Str("x")}).ok());
  EXPECT_TRUE(table.AppendRow({Value::Str("x"), Value::Int(1)}).ok());
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableTest, AppendChecksTypes) {
  Table table("T", TwoColumnSchema());
  EXPECT_FALSE(table.AppendRow({Value::Int(1), Value::Int(1)}).ok());
  // Missing values fit anywhere.
  EXPECT_TRUE(table.AppendRow({Value::CNull(), Value::Null()}).ok());
}

TEST(TableTest, CellAccess) {
  Table table("T", TwoColumnSchema());
  ASSERT_TRUE(table.AppendRow({Value::Str("a"), Value::Int(5)}).ok());
  EXPECT_EQ(table.GetCell(0, "name").value().AsString(), "a");
  EXPECT_TRUE(table.SetCell(0, "count", Value::Int(6)).ok());
  EXPECT_EQ(table.GetCell(0, "count").value().AsInt(), 6);
  EXPECT_FALSE(table.GetCell(5, "name").ok());
  EXPECT_FALSE(table.GetCell(0, "bogus").ok());
}

TEST(TableTest, StringColumn) {
  Table table("T", TwoColumnSchema());
  ASSERT_TRUE(table.AppendRow({Value::Str("a"), Value::Int(5)}).ok());
  ASSERT_TRUE(table.AppendRow({Value::CNull(), Value::Int(6)}).ok());
  std::vector<std::string> names = table.StringColumn("name").value();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "");  // Missing renders empty.
}

TEST(TableTest, CrowdMissingRows) {
  Table table("T", Schema({{"gender", ValueType::kString, true}}));
  ASSERT_TRUE(table.AppendRow({Value::Str("male")}).ok());
  ASSERT_TRUE(table.AppendRow({Value::CNull()}).ok());
  ASSERT_TRUE(table.AppendRow({Value::CNull()}).ok());
  std::vector<size_t> missing = table.CrowdMissingRows("gender").value();
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0], 1u);
  EXPECT_EQ(missing[1], 2u);
}

TEST(CatalogTest, AddGetDrop) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Table("Paper", TwoColumnSchema())).ok());
  EXPECT_TRUE(catalog.HasTable("paper"));  // Case-insensitive.
  EXPECT_TRUE(catalog.GetTable("PAPER").ok());
  EXPECT_FALSE(catalog.AddTable(Table("paper", TwoColumnSchema())).ok());
  EXPECT_EQ(catalog.TableNames().size(), 1u);
  ASSERT_TRUE(catalog.DropTable("Paper").ok());
  EXPECT_FALSE(catalog.HasTable("paper"));
  EXPECT_TRUE(catalog.TableNames().empty());
  EXPECT_FALSE(catalog.DropTable("paper").ok());
}

TEST(CatalogTest, MutableAccess) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(Table("T", TwoColumnSchema())).ok());
  Table* table = catalog.GetMutableTable("t").value();
  ASSERT_TRUE(table->AppendRow({Value::Str("x"), Value::Int(1)}).ok());
  EXPECT_EQ(catalog.GetTable("T").value()->num_rows(), 1u);
}

TEST(CsvTest, RoundTrip) {
  Table table("T", TwoColumnSchema());
  ASSERT_TRUE(table.AppendRow({Value::Str("plain"), Value::Int(1)}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Str("has,comma"), Value::Int(2)}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Str("has\"quote"), Value::Int(3)}).ok());
  ASSERT_TRUE(table.AppendRow({Value::CNull(), Value::Null()}).ok());
  std::string csv = TableToCsv(table);
  Table parsed = TableFromCsv("T", TwoColumnSchema(), csv).value();
  ASSERT_EQ(parsed.num_rows(), 4u);
  EXPECT_EQ(parsed.row(1)[0].AsString(), "has,comma");
  EXPECT_EQ(parsed.row(2)[0].AsString(), "has\"quote");
  EXPECT_TRUE(parsed.row(3)[0].is_cnull());
  EXPECT_TRUE(parsed.row(3)[1].is_null());
}

TEST(CsvTest, EmbeddedNewlineRoundTrip) {
  Table table("T", TwoColumnSchema());
  ASSERT_TRUE(table.AppendRow({Value::Str("line one\nline two"), Value::Int(1)}).ok());
  Table parsed = TableFromCsv("T", TwoColumnSchema(), TableToCsv(table)).value();
  ASSERT_EQ(parsed.num_rows(), 1u);
  EXPECT_EQ(parsed.row(0)[0].AsString(), "line one\nline two");
}

TEST(CsvTest, HeaderValidation) {
  EXPECT_FALSE(TableFromCsv("T", TwoColumnSchema(), "name\nx").ok());
  EXPECT_FALSE(TableFromCsv("T", TwoColumnSchema(), "wrong,count\nx,1").ok());
  EXPECT_TRUE(TableFromCsv("T", TwoColumnSchema(), "NAME,Count\nx,1").ok());
}

TEST(CsvTest, BadCells) {
  EXPECT_FALSE(TableFromCsv("T", TwoColumnSchema(), "name,count\nx,notanint").ok());
  EXPECT_FALSE(TableFromCsv("T", TwoColumnSchema(), "name,count\n\"unterminated,1").ok());
  EXPECT_FALSE(TableFromCsv("T", TwoColumnSchema(), "").ok());
}

TEST(CsvTest, ParseLineQuoting) {
  std::vector<std::string> fields = ParseCsvLine("a,\"b,\"\"c\",d").value();
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b,\"c");
}

}  // namespace
}  // namespace cdb
