// The session-pipeline contract: a Step()-driven QuerySession is
// byte-identical to CdbExecutor::Run(), pausable/resumable mid-query, and
// MultiQueryScheduler's cross-query dedup preserves single-query answers
// while strictly saving crowd work.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bench_util/metrics.h"
#include "cql/parser.h"
#include "datagen/mini_example.h"
#include "exec/executor.h"
#include "exec/scheduler.h"
#include "tests/test_util.h"

namespace cdb {
namespace {

const char kTwoTableQuery[] =
    "SELECT * FROM Paper, Researcher "
    "WHERE Paper.Author CROWDJOIN Researcher.Name";

ResolvedQuery Resolve(const GeneratedDataset& ds, const std::string& cql) {
  Statement stmt = ParseStatement(cql).value();
  return AnalyzeSelect(std::get<SelectStatement>(stmt), ds.catalog).value();
}

// Everything the executor reports, as one comparable byte string.
std::string StatsSignature(const ExecutionStats& stats) {
  std::ostringstream out;
  out << "tasks=" << stats.tasks_asked << "\nrounds=" << stats.rounds
      << "\nworker_answers=" << stats.worker_answers
      << "\nhits=" << stats.hits_published
      << "\nreposted=" << stats.reposted_tasks
      << "\nlate=" << stats.late_answers
      << "\nrecolored=" << stats.recolored_edges
      << "\nfallback=" << stats.fallback_colored << "\nround_sizes=";
  for (int64_t size : stats.round_sizes) out << size << ",";
  out << "\nstarved=";
  for (int64_t id : stats.starved_task_ids) out << id << ",";
  out << "\nunique_answers=";
  for (const auto& [task, n] : stats.unique_answers_per_task) {
    out << task << ":" << n << ",";
  }
  out << "\n" << PlatformStatsDump(stats.platform);
  return out.str();
}

std::string ColorDump(const QueryGraph& graph) {
  std::string out;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    switch (graph.edge(e).color) {
      case EdgeColor::kBlue:
        out += 'B';
        break;
      case EdgeColor::kRed:
        out += 'R';
        break;
      default:
        out += '?';
        break;
    }
  }
  return out;
}

ExecutorOptions NoisyCrowd(uint64_t seed, int threads) {
  ExecutorOptions options;
  options.platform.worker_quality_mean = 0.85;
  options.platform.redundancy = 3;
  options.platform.seed = seed;
  options.num_threads = threads;
  options.graph.num_threads = threads;
  return options;
}

ExecutorOptions FaultyCrowd(uint64_t seed, int threads) {
  ExecutorOptions options = NoisyCrowd(seed, threads);
  FaultProfile& fault = options.platform.fault;
  fault.abandon_prob = 0.25;
  fault.straggler_prob = 0.2;
  fault.straggler_delay_ticks = 6;
  fault.duplicate_prob = 0.1;
  fault.no_show_prob = 0.15;
  fault.task_deadline_ticks = 8;
  return options;
}

ExecutorOptions PerfectCrowd(uint64_t seed) {
  ExecutorOptions options;
  options.platform.worker_quality_mean = 1.0;
  options.platform.worker_quality_stddev = 0.0;
  options.platform.redundancy = 1;
  options.platform.seed = seed;
  return options;
}

class SessionTest : public ::testing::Test {
 protected:
  SessionTest()
      : dataset_(MakeMiniPaperExample()),
        query_(Resolve(dataset_, kMiniExampleQuery)),
        truth_(MakeEdgeTruth(&dataset_, &query_)) {}

  // Runs the session phase by phase via Step(), like a scheduler would,
  // instead of RunToCompletion().
  ExecutionResult StepToCompletion(QuerySession& session) {
    while (true) {
      Result<bool> more = session.Step();
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.value()) break;
    }
    EXPECT_TRUE(session.done());
    return session.TakeResult();
  }

  GeneratedDataset dataset_;
  ResolvedQuery query_;
  EdgeTruthFn truth_;
};

TEST_F(SessionTest, StepDrivenMatchesExecutorByteIdentical) {
  for (int threads : {1, 8}) {
    CdbExecutor executor(&query_, NoisyCrowd(21, threads), truth_);
    ExecutionResult via_run = executor.Run().value();

    QuerySession session(&query_, NoisyCrowd(21, threads), truth_);
    ExecutionResult via_steps = StepToCompletion(session);

    EXPECT_EQ(StatsSignature(via_run.stats), StatsSignature(via_steps.stats))
        << "threads=" << threads;
    EXPECT_EQ(ColorDump(executor.graph()), ColorDump(session.graph()))
        << "threads=" << threads;
    EXPECT_EQ(via_run.answers, via_steps.answers);
  }
}

TEST_F(SessionTest, StepDrivenMatchesExecutorUnderFaults) {
  for (int threads : {1, 8}) {
    CdbExecutor executor(&query_, FaultyCrowd(77, threads), truth_);
    ExecutionResult via_run = executor.Run().value();

    QuerySession session(&query_, FaultyCrowd(77, threads), truth_);
    ExecutionResult via_steps = StepToCompletion(session);

    EXPECT_EQ(StatsSignature(via_run.stats), StatsSignature(via_steps.stats))
        << "threads=" << threads;
    EXPECT_EQ(ColorDump(executor.graph()), ColorDump(session.graph()))
        << "threads=" << threads;
  }
}

TEST_F(SessionTest, PhaseCountersTrackTheRoundLoop) {
  QuerySession session(&query_, NoisyCrowd(5, 1), truth_);
  ExecutionResult result = StepToCompletion(session);
  const auto& phases = result.stats.phases;
  auto at = [&](SessionPhase p) -> const PhaseCounters& {
    return phases[static_cast<size_t>(p)];
  };
  // One graph build; one color step per counted round; every round task goes
  // through kPublish exactly once (clean crowd: no reposts, nothing denied).
  EXPECT_EQ(at(SessionPhase::kBuildGraph).steps, 1);
  EXPECT_EQ(at(SessionPhase::kColor).steps, result.stats.rounds);
  EXPECT_EQ(at(SessionPhase::kPublish).tasks, result.stats.tasks_asked);
  EXPECT_EQ(at(SessionPhase::kCollect).tasks, result.stats.reposted_tasks);
  EXPECT_GT(at(SessionPhase::kPublish).answers, 0);
  EXPECT_EQ(at(SessionPhase::kDone).steps, 0);
  int64_t steps = 0;
  for (const PhaseCounters& c : phases) steps += c.steps;
  EXPECT_GT(steps, result.stats.rounds * 4);  // Every round walks >=5 phases.
}

TEST_F(SessionTest, PauseAndInterleaveDoesNotChangeTheResult) {
  QuerySession continuous(&query_, NoisyCrowd(9, 1), truth_);
  ExecutionResult expected = StepToCompletion(continuous);

  // Pause one session mid-query, run a different query to completion, then
  // resume: per-session state must be fully isolated.
  QuerySession paused(&query_, NoisyCrowd(9, 1), truth_);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(paused.Step().value());
  }
  EXPECT_FALSE(paused.done());
  ResolvedQuery other = Resolve(dataset_, kTwoTableQuery);
  EdgeTruthFn other_truth = MakeEdgeTruth(&dataset_, &other);
  QuerySession interloper(&other, NoisyCrowd(33, 1), other_truth);
  StepToCompletion(interloper);
  ExecutionResult resumed = StepToCompletion(paused);

  EXPECT_EQ(StatsSignature(expected.stats), StatsSignature(resumed.stats));
  EXPECT_EQ(expected.answers, resumed.answers);
}

TEST_F(SessionTest, SchedulerMatchesSoloColorsWithPerfectWorkers) {
  // Solo runs of both queries.
  CdbExecutor solo_a(&query_, PerfectCrowd(3), truth_);
  ExecutionResult result_a = solo_a.Run().value();
  ResolvedQuery query_b = Resolve(dataset_, kTwoTableQuery);
  EdgeTruthFn truth_b = MakeEdgeTruth(&dataset_, &query_b);
  CdbExecutor solo_b(&query_b, PerfectCrowd(3), truth_b);
  ExecutionResult result_b = solo_b.Run().value();

  // The same two queries co-scheduled: perfect workers answer every asked
  // task correctly in either mode, so every colored edge must agree.
  MultiQueryOptions mq;
  mq.platform = PerfectCrowd(3).platform;
  MultiQueryScheduler scheduler(mq);
  ASSERT_EQ(scheduler.AddQuery(&query_, PerfectCrowd(3), truth_), 0u);
  ASSERT_EQ(scheduler.AddQuery(&query_b, PerfectCrowd(3), truth_b), 1u);
  std::vector<ExecutionResult> results = scheduler.RunAll().value();
  ASSERT_EQ(results.size(), 2u);

  EXPECT_EQ(ColorDump(scheduler.session(0).graph()),
            ColorDump(solo_a.graph()));
  EXPECT_EQ(ColorDump(scheduler.session(1).graph()),
            ColorDump(solo_b.graph()));
  EXPECT_EQ(results[0].answers, result_a.answers);
  EXPECT_EQ(results[1].answers, result_b.answers);
}

TEST_F(SessionTest, SchedulerDedupsOverlappingQueries) {
  CdbExecutor solo(&query_, PerfectCrowd(3), truth_);
  ExecutionResult solo_result = solo.Run().value();
  int64_t solo_published = solo_result.stats.platform.tasks_published;

  // The same query twice: every join task of the second session is the same
  // question, so the scheduler must publish far fewer than 2x solo.
  MultiQueryOptions mq;
  mq.platform = PerfectCrowd(3).platform;
  MultiQueryScheduler scheduler(mq);
  scheduler.AddQuery(&query_, PerfectCrowd(3), truth_);
  scheduler.AddQuery(&query_, PerfectCrowd(3), truth_);
  std::vector<ExecutionResult> results = scheduler.RunAll().value();

  EXPECT_LT(scheduler.platform_stats().tasks_published, 2 * solo_published);
  EXPECT_GT(scheduler.stats().dedup_hits + scheduler.stats().cache_hits, 0);
  EXPECT_GT(results[0].stats.dedup_tasks_saved +
                results[1].stats.dedup_tasks_saved,
            0);
  // Both sessions still answer the query correctly.
  EXPECT_EQ(results[0].answers, solo_result.answers);
  EXPECT_EQ(results[1].answers, solo_result.answers);
}

TEST_F(SessionTest, GlobalBudgetCapsThePlatform) {
  MultiQueryOptions mq;
  mq.platform = PerfectCrowd(3).platform;
  mq.global_budget = 25;
  MultiQueryScheduler scheduler(mq);
  scheduler.AddQuery(&query_, PerfectCrowd(3), truth_);
  scheduler.AddQuery(&query_, PerfectCrowd(3), truth_);
  std::vector<ExecutionResult> results = scheduler.RunAll().value();

  ASSERT_EQ(results.size(), 2u);
  EXPECT_LE(scheduler.platform_stats().tasks_published, 25);
  EXPECT_GT(scheduler.stats().budget_denied, 0);
}

TEST_F(SessionTest, SharedHitsAreCountedForMergedRounds) {
  MultiQueryOptions mq;
  mq.platform = PerfectCrowd(3).platform;
  mq.dedup_tasks = false;  // Force both sessions' tasks into the same HITs.
  MultiQueryScheduler scheduler(mq);
  scheduler.AddQuery(&query_, PerfectCrowd(3), truth_);
  scheduler.AddQuery(&query_, PerfectCrowd(3), truth_);
  scheduler.RunAll().value();
  EXPECT_GT(scheduler.platform_stats().shared_hits, 0);
}

}  // namespace
}  // namespace cdb
