#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/string_util.h"
#include "datagen/award_dataset.h"
#include "datagen/mini_example.h"
#include "datagen/paper_dataset.h"
#include "datagen/perturb.h"
#include "similarity/similarity.h"

namespace cdb {
namespace {

TEST(PerturbTest, TypoChangesAtMostOneEdit) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    std::string out = IntroduceTypo("franklin", rng);
    EXPECT_LE(EditDistance("franklin", out), 1u);
  }
}

TEST(PerturbTest, AbbreviationKeepsSimilarity) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    std::string out = PerturbOrgName("University of California", rng);
    EXPECT_GE(ComputeSimilarity(SimilarityFunction::kQGramJaccard,
                                "University of California", out),
              0.3)
        << out;
  }
}

TEST(PerturbTest, PersonNameStaysRecognizable) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    std::string out = PerturbPersonName("Michael J. Franklin", rng);
    EXPECT_FALSE(out.empty());
    // The perturbation keeps at least one original token intact.
    bool shares = out.find("Franklin") != std::string::npos ||
                  out.find("Michael") != std::string::npos ||
                  out.find("M.") != std::string::npos;
    EXPECT_TRUE(shares) << out;
  }
}

TEST(PerturbTest, DropRandomWordShortensByOne) {
  Rng rng(4);
  std::string out = DropRandomWord("a b c", rng);
  EXPECT_EQ(SplitWhitespace(out).size(), 2u);
  EXPECT_EQ(DropRandomWord("single", rng), "single");
}

TEST(PaperDatasetTest, CardinalitiesMatchTable2) {
  PaperDatasetOptions options;
  GeneratedDataset ds = GeneratePaperDataset(options);
  EXPECT_EQ(ds.catalog.GetTable("Paper").value()->num_rows(), 676u);
  EXPECT_EQ(ds.catalog.GetTable("Citation").value()->num_rows(), 1239u);
  EXPECT_EQ(ds.catalog.GetTable("Researcher").value()->num_rows(), 911u);
  EXPECT_EQ(ds.catalog.GetTable("University").value()->num_rows(), 830u);
}

TEST(PaperDatasetTest, ScaleShrinks) {
  PaperDatasetOptions options;
  options.scale = 0.1;
  GeneratedDataset ds = GeneratePaperDataset(options);
  EXPECT_EQ(ds.catalog.GetTable("Paper").value()->num_rows(), 67u);
}

TEST(PaperDatasetTest, EntityVectorsAligned) {
  PaperDatasetOptions options;
  options.scale = 0.2;
  GeneratedDataset ds = GeneratePaperDataset(options);
  for (const char* key : {"Paper", "Citation", "Researcher", "University"}) {
    const Table* table = ds.catalog.GetTable(key).value();
    for (const Column& column : table->schema().columns()) {
      auto it = ds.entity_of.find(GeneratedDataset::ColumnKey(key, column.name));
      if (it != ds.entity_of.end()) {
        EXPECT_EQ(it->second.size(), table->num_rows())
            << key << "." << column.name;
      }
    }
  }
}

TEST(PaperDatasetTest, TrueMatchesHaveUsableSimilarity) {
  // Most true author-name matches must survive the epsilon threshold,
  // otherwise recall would be capped artificially low.
  PaperDatasetOptions options;
  options.scale = 0.3;
  GeneratedDataset ds = GeneratePaperDataset(options);
  const Table* paper = ds.catalog.GetTable("Paper").value();
  const Table* researcher = ds.catalog.GetTable("Researcher").value();
  const auto& paper_ent = ds.Entities("Paper", "author");
  const auto& res_ent = ds.Entities("Researcher", "name");
  int matches = 0;
  int above_threshold = 0;
  for (size_t p = 0; p < paper->num_rows(); ++p) {
    if (paper_ent[p] == kNoEntity) continue;
    for (size_t r = 0; r < researcher->num_rows(); ++r) {
      if (paper_ent[p] != res_ent[r]) continue;
      ++matches;
      double sim = ComputeSimilarity(
          SimilarityFunction::kQGramJaccard,
          paper->row(p)[0].AsString(), researcher->row(r)[1].AsString());
      if (sim >= 0.3) ++above_threshold;
    }
  }
  ASSERT_GT(matches, 0);
  EXPECT_GT(static_cast<double>(above_threshold) / matches, 0.7);
}

TEST(PaperDatasetTest, DeterministicPerSeed) {
  PaperDatasetOptions options;
  options.scale = 0.05;
  GeneratedDataset a = GeneratePaperDataset(options);
  GeneratedDataset b = GeneratePaperDataset(options);
  const Table* ta = a.catalog.GetTable("Paper").value();
  const Table* tb = b.catalog.GetTable("Paper").value();
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (size_t i = 0; i < ta->num_rows(); ++i) {
    EXPECT_EQ(ta->row(i)[1].AsString(), tb->row(i)[1].AsString());
  }
}

TEST(PaperDatasetTest, ConstantEntitiesRegistered) {
  GeneratedDataset ds = GeneratePaperDataset(PaperDatasetOptions{});
  EXPECT_NE(ds.ConstantEntity("University", "country", "USA"), kNoEntity);
  EXPECT_NE(ds.ConstantEntity("University", "country", "usa"), kNoEntity);
  EXPECT_EQ(ds.ConstantEntity("University", "country", "USA"),
            ds.ConstantEntity("University", "country", "United States"));
  EXPECT_NE(ds.ConstantEntity("Paper", "conference", "sigmod"), kNoEntity);
  EXPECT_EQ(ds.ConstantEntity("University", "country", "Narnia"), kNoEntity);
}

TEST(AwardDatasetTest, CardinalitiesMatchTable3) {
  GeneratedDataset ds = GenerateAwardDataset(AwardDatasetOptions{});
  EXPECT_EQ(ds.catalog.GetTable("Celebrity").value()->num_rows(), 1498u);
  EXPECT_EQ(ds.catalog.GetTable("City").value()->num_rows(), 3220u);
  EXPECT_EQ(ds.catalog.GetTable("Winner").value()->num_rows(), 2669u);
  EXPECT_EQ(ds.catalog.GetTable("Award").value()->num_rows(), 1192u);
}

TEST(AwardDatasetTest, WinnersLinkToCelebrities) {
  AwardDatasetOptions options;
  options.scale = 0.2;
  GeneratedDataset ds = GenerateAwardDataset(options);
  const auto& winner_ent = ds.Entities("Winner", "name");
  const auto& celeb_ent = ds.Entities("Celebrity", "name");
  std::set<int64_t> celeb_ids(celeb_ent.begin(), celeb_ent.end());
  int linked = 0;
  for (int64_t e : winner_ent) linked += celeb_ids.count(e) ? 1 : 0;
  // ~80% of winners should resolve to an in-table celebrity.
  EXPECT_GT(static_cast<double>(linked) / winner_ent.size(), 0.6);
}

TEST(MiniExampleTest, TablesMatchTable1) {
  GeneratedDataset ds = MakeMiniPaperExample();
  EXPECT_EQ(ds.catalog.GetTable("Paper").value()->num_rows(), 8u);
  EXPECT_EQ(ds.catalog.GetTable("Researcher").value()->num_rows(), 12u);
  EXPECT_EQ(ds.catalog.GetTable("Citation").value()->num_rows(), 12u);
  EXPECT_EQ(ds.catalog.GetTable("University").value()->num_rows(), 12u);
}

TEST(MiniExampleTest, KnownTruthLinks) {
  GeneratedDataset ds = MakeMiniPaperExample();
  const auto& paper_author = ds.Entities("Paper", "author");
  const auto& researcher = ds.Entities("Researcher", "name");
  // p8 "Surajit Chaudhuri" == r12 "S. Chaudhuri" (rows 7 and 11).
  EXPECT_EQ(paper_author[7], researcher[11]);
  // p2 "Samuel Madden" matches nobody.
  EXPECT_EQ(paper_author[1], kNoEntity);
}

}  // namespace
}  // namespace cdb
