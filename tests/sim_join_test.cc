#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "similarity/sim_join.h"

namespace cdb {
namespace {

std::set<std::pair<int32_t, int32_t>> PairSet(const std::vector<SimPair>& pairs) {
  std::set<std::pair<int32_t, int32_t>> out;
  for (const SimPair& p : pairs) out.insert({p.left, p.right});
  return out;
}

// Reference implementation: brute-force all pairs.
std::set<std::pair<int32_t, int32_t>> BruteForce(
    const std::vector<std::string>& left, const std::vector<std::string>& right,
    SimilarityFunction fn, double threshold) {
  std::set<std::pair<int32_t, int32_t>> out;
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      if (ComputeSimilarity(fn, left[i], right[j]) >= threshold) {
        out.insert({static_cast<int32_t>(i), static_cast<int32_t>(j)});
      }
    }
  }
  return out;
}

std::vector<std::string> RandomStrings(Rng& rng, size_t count) {
  const std::vector<std::string> words = {
      "query", "crowd", "join",  "data",  "clean", "entity", "match",
      "graph", "cost",  "task",  "worker", "tuple", "select", "optimize",
  };
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string s;
    int64_t n = rng.UniformInt(1, 4);
    for (int64_t w = 0; w < n; ++w) {
      if (w > 0) s += ' ';
      s += words[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(words.size()) - 1))];
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(BoundedEditDistanceTest, MatchesUnbounded) {
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 10), 3u);
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 3), 3u);
}

TEST(BoundedEditDistanceTest, EarlyAbandon) {
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 2), 3u);  // max + 1.
  EXPECT_EQ(BoundedEditDistance("aaaa", "bbbb", 1), 2u);
}

TEST(BoundedEditDistanceTest, EmptyStrings) {
  EXPECT_EQ(BoundedEditDistance("", "", 0), 0u);
  EXPECT_EQ(BoundedEditDistance("abc", "", 3), 3u);
  EXPECT_EQ(BoundedEditDistance("abc", "", 2), 3u);  // max + 1.
}

TEST(SimilarityJoinTest, NoSimIsCrossProductBelowHalf) {
  std::vector<std::string> left = {"a", "b"};
  std::vector<std::string> right = {"x", "y", "z"};
  EXPECT_EQ(SimilarityJoin(left, right, SimilarityFunction::kNoSim, 0.5).size(), 6u);
  EXPECT_TRUE(SimilarityJoin(left, right, SimilarityFunction::kNoSim, 0.6).empty());
}

TEST(SimilarityJoinTest, ExactDuplicatesFound) {
  std::vector<std::string> left = {"University of California", "Duke Univ."};
  std::vector<std::string> right = {"Duke Univ.", "MIT"};
  std::vector<SimPair> pairs =
      SimilarityJoin(left, right, SimilarityFunction::kQGramJaccard, 0.99);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].left, 1);
  EXPECT_EQ(pairs[0].right, 0);
  EXPECT_DOUBLE_EQ(pairs[0].sim, 1.0);
}

TEST(SimilaritySearchTest, MatchesBruteForce) {
  std::vector<std::string> values = {"USA", "US", "United States", "UK",
                                     "Deutschland"};
  std::vector<SimPair> hits =
      SimilaritySearch(values, "USA", SimilarityFunction::kQGramJaccard, 0.3);
  std::set<int32_t> found;
  for (const SimPair& hit : hits) found.insert(hit.left);
  EXPECT_TRUE(found.count(0));   // USA
  EXPECT_FALSE(found.count(4));  // Deutschland
}

struct JoinCase {
  SimilarityFunction fn;
  double threshold;
};

class SimJoinPropertyTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(SimJoinPropertyTest, MatchesBruteForceOnRandomData) {
  const JoinCase test_case = GetParam();
  Rng rng(1234 + static_cast<uint64_t>(test_case.threshold * 100) +
          static_cast<uint64_t>(test_case.fn));
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::string> left = RandomStrings(rng, 40);
    std::vector<std::string> right = RandomStrings(rng, 40);
    auto fast = PairSet(
        SimilarityJoin(left, right, test_case.fn, test_case.threshold));
    auto brute = BruteForce(left, right, test_case.fn, test_case.threshold);
    EXPECT_EQ(fast, brute) << SimilarityFunctionName(test_case.fn)
                           << " t=" << test_case.threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FunctionsAndThresholds, SimJoinPropertyTest,
    ::testing::Values(
        JoinCase{SimilarityFunction::kQGramJaccard, 0.3},
        JoinCase{SimilarityFunction::kQGramJaccard, 0.5},
        JoinCase{SimilarityFunction::kQGramJaccard, 0.8},
        JoinCase{SimilarityFunction::kWordJaccard, 0.3},
        JoinCase{SimilarityFunction::kWordJaccard, 0.6},
        JoinCase{SimilarityFunction::kQGramCosine, 0.4},
        JoinCase{SimilarityFunction::kQGramCosine, 0.7},
        JoinCase{SimilarityFunction::kEditDistance, 0.3},
        JoinCase{SimilarityFunction::kEditDistance, 0.6}));

TEST(SimilarityJoinTest, ReportedSimilaritiesAreExact) {
  Rng rng(77);
  std::vector<std::string> left = RandomStrings(rng, 30);
  std::vector<std::string> right = RandomStrings(rng, 30);
  for (const SimPair& pair :
       SimilarityJoin(left, right, SimilarityFunction::kQGramJaccard, 0.3)) {
    double expected = ComputeSimilarity(SimilarityFunction::kQGramJaccard,
                                        left[static_cast<size_t>(pair.left)],
                                        right[static_cast<size_t>(pair.right)]);
    EXPECT_DOUBLE_EQ(pair.sim, expected);
  }
}

}  // namespace
}  // namespace cdb
